"""Unit tests for the set-associative cache model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.memory.cache import SetAssocCache


def tiny_cache(sets=2, assoc=2):
    """A cache with the requested geometry (line = 64 B)."""
    return SetAssocCache(size_bytes=sets * assoc * 64, assoc=assoc)


class TestGeometry:
    def test_set_count(self):
        cache = SetAssocCache(48 * 1024, 12)
        assert cache.num_sets == 64

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(64 * 3, 2)

    def test_rejects_empty_cache(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(0, 1)

    def test_set_index_is_modulo(self):
        cache = tiny_cache(sets=2)
        assert cache.set_index(0) == 0
        assert cache.set_index(1) == 1
        assert cache.set_index(2) == 0


class TestInsertLookup:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.contains(0)
        first = cache.insert(0)
        assert not first.hit
        assert cache.contains(0)
        assert cache.insert(0).hit

    def test_lru_eviction_order(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.touch(0)  # 1 becomes LRU
        result = cache.insert(2)
        assert result.evicted == 1
        assert cache.contains(0)

    def test_eviction_only_within_set(self):
        cache = tiny_cache(sets=2, assoc=1)
        cache.insert(0)  # set 0
        result = cache.insert(1)  # set 1, no eviction
        assert result.evicted is None
        assert cache.contains(0)

    def test_touch_missing_returns_false(self):
        cache = tiny_cache()
        assert cache.touch(40) is False

    def test_resident_lines_reports_all(self):
        cache = tiny_cache()
        cache.insert(0)
        cache.insert(1)
        assert sorted(cache.resident_lines()) == [0, 1]


class TestPinning:
    def test_pinned_line_never_evicted(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.pin(0)
        cache.insert(1)
        result = cache.insert(2)
        assert result.evicted == 1
        assert cache.contains(0)

    def test_full_pinned_set_overflows(self):
        cache = tiny_cache(sets=1, assoc=2)
        for line in (0, 1):
            cache.insert(line)
            cache.pin(line)
        with pytest.raises(OverflowError):
            cache.insert(2)

    def test_pin_missing_raises(self):
        cache = tiny_cache()
        with pytest.raises(KeyError):
            cache.pin(5)

    def test_unpin_allows_eviction_again(self):
        cache = tiny_cache(sets=1, assoc=1)
        cache.insert(0)
        cache.pin(0)
        cache.unpin(0)
        result = cache.insert(1)
        assert result.evicted == 0

    def test_unpin_missing_is_noop(self):
        cache = tiny_cache()
        cache.unpin(99)  # does not raise

    def test_invalidate_pinned_raises(self):
        cache = tiny_cache()
        cache.insert(0)
        cache.pin(0)
        with pytest.raises(OverflowError):
            cache.invalidate(0)

    def test_invalidate_removes_line(self):
        cache = tiny_cache()
        cache.insert(0)
        cache.invalidate(0)
        assert not cache.contains(0)

    def test_pinned_count(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.insert(0)
        cache.insert(1)
        cache.pin(0)
        assert cache.pinned_count(0) == 1


class TestCanCoreside:
    def test_fits_within_associativity(self):
        cache = tiny_cache(sets=2, assoc=2)
        # lines 0, 2 -> set 0; 1 -> set 1.
        assert cache.can_coreside([0, 1, 2])

    def test_over_full_set_rejected(self):
        cache = tiny_cache(sets=2, assoc=2)
        # 0, 2, 4 all map to set 0 with only 2 ways.
        assert not cache.can_coreside([0, 2, 4])

    def test_duplicates_collapsed(self):
        cache = tiny_cache(sets=2, assoc=2)
        assert cache.can_coreside([0, 0, 0, 2])

    def test_empty_footprint_fits(self):
        assert tiny_cache().can_coreside([])
