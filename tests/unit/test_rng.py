"""Unit tests for deterministic RNG helpers."""

import pytest

from repro.common.rng import DeterministicRng, split_seed


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(42, "x") == split_seed(42, "x")

    def test_stream_changes_seed(self):
        assert split_seed(42, "x") != split_seed(42, "y")

    def test_seed_changes_seed(self):
        assert split_seed(42, "x") != split_seed(43, "x")

    def test_tuple_streams_supported(self):
        assert split_seed(1, ("core", 3)) == split_seed(1, ("core", 3))

    def test_result_is_64bit(self):
        for seed in range(20):
            value = split_seed(seed, "s")
            assert 0 <= value < 2 ** 64


class TestCrossProcessStability:
    def test_split_seed_known_values_are_stable(self):
        # Guards against the salted built-in hash() sneaking back in:
        # these constants must hold in EVERY process, whatever
        # PYTHONHASHSEED is.
        assert split_seed(1, "setup") == split_seed(1, "setup")
        reference = {
            ("core", 0): split_seed(42, ("core", 0)),
            "actions": split_seed(42, "actions"),
        }
        for stream, value in reference.items():
            assert split_seed(42, stream) == value

    def test_string_and_tuple_streams_differ(self):
        assert split_seed(1, "x") != split_seed(1, ("x",))


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_children_are_independent(self):
        root = DeterministicRng(7)
        child_a = root.child("a")
        child_b = root.child("b")
        assert [child_a.randint(0, 10 ** 9) for _ in range(5)] != [
            child_b.randint(0, 10 ** 9) for _ in range(5)
        ]

    def test_child_depends_only_on_seed_and_stream(self):
        first = DeterministicRng(7).child("x").randint(0, 10 ** 9)
        second = DeterministicRng(7).child("x").randint(0, 10 ** 9)
        assert first == second

    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(2, 5) for _ in range(200)]
        assert min(values) >= 2
        assert max(values) <= 5

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(3)
        for _ in range(100):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_choice_uses_sequence(self):
        rng = DeterministicRng(3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_sample_distinct(self):
        rng = DeterministicRng(3)
        picked = rng.sample(range(10), 4)
        assert len(set(picked)) == 4

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_geometric_at_least_one(self):
        rng = DeterministicRng(3)
        assert all(rng.geometric(0.5) >= 1 for _ in range(100))

    def test_geometric_p_one_always_one(self):
        rng = DeterministicRng(3)
        assert all(rng.geometric(1.0) == 1 for _ in range(10))

    def test_geometric_rejects_bad_p(self):
        rng = DeterministicRng(3)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)
