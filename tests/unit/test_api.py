"""Unit tests for the repro.api facade.

Pins the facade's contract: input resolution (names/factories, letters,
seeds), report conveniences, serialization round-trips, the tracing
hooks, and — required by the deprecation story — exact equivalence
between the legacy ``repro.sim.runner`` trio and their ``repro.api``
replacements, with the legacy spellings emitting DeprecationWarning.
"""

import warnings

import pytest

from repro import api
from repro.api import SimulationReport, simulate
from repro.common.errors import ConfigurationError
from repro.obs.trace import EventTrace
from repro.sim import runner
from repro.sim.config import SimConfig
from repro.workloads import make_workload

CORES = 4
OPS = 4


@pytest.fixture
def config():
    return SimConfig.for_design("baseline", num_cores=CORES)


def factory():
    return make_workload("arrayswap", ops_per_thread=OPS)


class TestInputResolution:
    def test_config_letter(self):
        report = simulate("arrayswap", "baseline", seeds=1, ops_per_thread=OPS)
        assert report.config.config_letter == "B"

    def test_config_none_defaults(self):
        report = simulate(factory, seeds=1)
        assert isinstance(report.config, SimConfig)

    def test_bad_letter_rejected(self):
        with pytest.raises(ConfigurationError, match="registered design"):
            simulate("arrayswap", "Z", seeds=1)

    def test_bad_config_type_rejected(self):
        with pytest.raises(TypeError, match="config must be"):
            simulate("arrayswap", 42, seeds=1)

    def test_bad_workload_type_rejected(self):
        with pytest.raises(TypeError, match="workload must be"):
            simulate(123, "baseline")

    def test_seeds_int_or_iterable(self, config):
        single = simulate(factory, config, seeds=7)
        assert single.seeds == (7,)
        multi = simulate(factory, config, seeds=(1, 2))
        assert multi.seeds == (1, 2)

    def test_empty_seeds_rejected(self, config):
        with pytest.raises(ValueError, match="at least one seed"):
            simulate(factory, config, seeds=())

    def test_ops_per_thread_rejected_for_factories(self, config):
        with pytest.raises(ValueError, match="named workloads"):
            simulate(factory, config, seeds=1, ops_per_thread=8)

    def test_oracle_mode_applies(self):
        report = simulate("arrayswap", "baseline", seeds=1, ops_per_thread=OPS,
                          oracle="online")
        assert report.config.oracle == "online"

    def test_oracle_none_keeps_config_mode(self):
        config = SimConfig.for_design("baseline", oracle="cross-check")
        report = simulate("arrayswap", config, seeds=1, ops_per_thread=OPS)
        assert report.config.oracle == "cross-check"

    def test_oracle_kwarg_overrides_config_mode(self):
        config = SimConfig.for_design("baseline", oracle="shadow")
        report = simulate("arrayswap", config, seeds=1, ops_per_thread=OPS,
                          oracle="off")
        assert report.config.oracle == "off"

    def test_oracle_bool_kwarg_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="oracle mode name"):
            report = simulate("arrayswap", "baseline", seeds=1,
                              ops_per_thread=OPS, oracle=True)
        assert report.config.oracle == "shadow"
        with pytest.warns(DeprecationWarning, match="oracle mode name"):
            report = simulate("arrayswap", "baseline", seeds=1,
                              ops_per_thread=OPS, oracle=False)
        assert report.config.oracle == "off"

    def test_named_and_factory_agree(self, config):
        named = simulate("arrayswap", config, seeds=1, ops_per_thread=OPS)
        inline = simulate(factory, config, seeds=1)
        assert named.run.to_dict() == inline.run.to_dict()


class TestSimulationReport:
    def test_single_seed_conveniences(self, config):
        report = simulate(factory, config, seeds=1)
        assert report.run is report.runs[0]
        assert report.workload_name == "arrayswap"
        assert report.cycles == report.run.cycles
        assert report.aborts_per_commit == report.run.aborts_per_commit
        assert report.stats is report.run.stats
        assert report.trace is None
        assert report.traces == {}

    def test_multi_seed_uses_aggregate(self, config):
        report = simulate(factory, config, seeds=(1, 2, 3), trim=0)
        assert report.cycles == report.aggregate().cycles
        assert report.aggregate().to_dict() == report.aggregate().to_dict()

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            SimulationReport([])

    def test_dict_roundtrip_with_trace(self, config):
        report = simulate(factory, config, seeds=(1, 2), trace=True, trim=0)
        rebuilt = SimulationReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.trace.to_dicts() == report.trace.to_dicts()

    def test_json_roundtrip(self, config):
        report = simulate(factory, config, seeds=1)
        assert SimulationReport.from_json(report.to_json()).to_dict() \
            == report.to_dict()

    def test_trace_required_for_exports(self, config, tmp_path):
        report = simulate(factory, config, seeds=1)
        with pytest.raises(ValueError, match="no trace"):
            report.forensic_report()
        with pytest.raises(ValueError, match="no trace"):
            report.write_chrome_trace(tmp_path / "t.json")

    def test_repr(self, config):
        assert "arrayswap" in repr(simulate(factory, config, seeds=1))


class TestTracing:
    def test_trace_true_attaches_per_run(self, config):
        report = simulate(factory, config, seeds=(1, 2), trace=True, trim=0)
        assert set(report.traces) == {1, 2}
        for trace in report.traces.values():
            assert isinstance(trace, EventTrace)
            assert len(trace) > 0

    def test_results_identical_with_and_without_trace(self, config):
        plain = simulate(factory, config, seeds=1)
        traced = simulate(factory, config, seeds=1, trace=True)
        assert plain.run.stats.to_dict() == traced.run.stats.to_dict()
        assert plain.run.cycles == traced.run.cycles

    def test_custom_sink_single_seed_only(self, config):
        sink = EventTrace()
        report = simulate(factory, config, seeds=1, trace=sink)
        assert len(sink) > 0
        with pytest.raises(ValueError, match="single seed"):
            simulate(factory, config, seeds=(1, 2), trace=sink)

    def test_chrome_and_forensic_exports(self, config, tmp_path):
        report = simulate(factory, config, seeds=1, trace=True)
        payload = report.write_chrome_trace(tmp_path / "t.json")
        assert (tmp_path / "t.json").exists()
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
        text = report.forensic_report()
        assert "AR " in text


class TestEnginePath:
    def test_engine_matches_inline(self, config, tmp_path):
        from repro.sim.engine import ExperimentEngine

        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
        inline = simulate("arrayswap", config, seeds=(1, 2), trim=0,
                          ops_per_thread=OPS, trace=True)
        fanned = simulate("arrayswap", config, seeds=(1, 2), trim=0,
                          ops_per_thread=OPS, trace=True, engine=engine)
        assert fanned.aggregate().to_dict() == inline.aggregate().to_dict()
        assert fanned.trace.to_dicts() == inline.trace.to_dicts()

    def test_engine_requires_named_workload(self, config):
        from repro.sim.engine import ExperimentEngine

        with pytest.raises(ValueError, match="by name"):
            simulate(factory, config, seeds=1,
                     engine=ExperimentEngine(jobs=1, cache_dir=None))

    def test_engine_rejects_custom_sink_and_energy_model(self, config):
        from repro.energy.model import EnergyModel
        from repro.sim.engine import ExperimentEngine

        engine = ExperimentEngine(jobs=1, cache_dir=None)
        with pytest.raises(ValueError, match="custom sink"):
            simulate("arrayswap", config, seeds=1, trace=EventTrace(),
                     engine=engine)
        with pytest.raises(ValueError, match="inline-only"):
            simulate("arrayswap", config, seeds=1, engine=engine,
                     energy_model=EnergyModel())


class TestLegacyEquivalence:
    """The deprecated trio: warns, and returns exactly what api does."""

    def test_run_workload(self, config):
        with pytest.warns(DeprecationWarning, match="run_workload"):
            legacy = runner.run_workload(factory, config, seed=1)
        assert legacy.to_dict() == simulate(factory, config, seeds=1) \
            .run.to_dict()

    def test_run_seeds(self, config):
        with pytest.warns(DeprecationWarning, match="run_seeds"):
            legacy = runner.run_seeds(factory, config, seeds=(1, 2), trim=0)
        via_api = api.run_seeds(factory, config, seeds=(1, 2), trim=0)
        assert legacy.to_dict() == via_api.to_dict()

    def test_sweep_retry_threshold(self, config):
        with pytest.warns(DeprecationWarning, match="sweep_retry_threshold"):
            legacy_best, legacy_threshold = runner.sweep_retry_threshold(
                "arrayswap", config, thresholds=(1, 2), seeds=(1,),
                ops_per_thread=OPS,
            )
        best, threshold = api.sweep_retry_threshold(
            "arrayswap", config, thresholds=(1, 2), seeds=(1,),
            ops_per_thread=OPS,
        )
        assert threshold == legacy_threshold
        assert best.to_dict() == legacy_best.to_dict()

    def test_api_path_does_not_warn(self, config):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(factory, config, seeds=1)
            api.run_seeds(factory, config, seeds=(1, 2), trim=0)
            api.sweep_retry_threshold(
                "arrayswap", config, thresholds=(1,), seeds=(1,),
                ops_per_thread=OPS,
            )


class TestJournalParameter:
    def test_journal_without_engine_raises(self, tmp_path):
        config = SimConfig.for_design("baseline", num_cores=2)
        with pytest.raises(ValueError, match="engine-only"):
            simulate("mwobject", config, seeds=1, ops_per_thread=3,
                     journal=str(tmp_path / "job"))

    def test_journal_with_engine_records_and_replays(self, tmp_path):
        from repro.sim.engine import ExperimentEngine
        from repro.sim.journal import SweepJournal

        config = SimConfig.for_design("baseline", num_cores=2)
        engine = ExperimentEngine(jobs=1, cache_dir=None)
        job = str(tmp_path / "job")
        first = simulate("mwobject", config, seeds=(1, 2), trim=0,
                         ops_per_thread=3, engine=engine, journal=job)
        assert SweepJournal(job).exists()
        again = simulate("mwobject", config, seeds=(1, 2), trim=0,
                         ops_per_thread=3, engine=engine, journal=job)
        assert again.to_dict() == first.to_dict()
