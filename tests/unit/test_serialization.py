"""Round-trip tests for the serializable config/result API."""

import dataclasses
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.energy.model import EnergyBreakdown
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.runner import AggregateResult, RunResult, run_seeds, run_workload
from repro.sim.stats import MachineStats
from repro.workloads import make_workload


def sample_result(letter="C", seed=1):
    config = SimConfig.for_design(design_name(letter), num_cores=4)
    return run_workload(
        lambda: make_workload("mwobject", ops_per_thread=6), config, seed=seed
    )


class TestSimConfigRoundTrip:
    def test_to_dict_covers_every_field(self):
        config = SimConfig()
        data = config.to_dict()
        assert set(data) == {
            field.name for field in dataclasses.fields(SimConfig)
        }

    def test_round_trip_identity(self):
        config = SimConfig.for_design("clear+powertm", num_cores=8, retry_threshold=3)
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_round_trip_through_json(self):
        config = SimConfig(speculation="sle", scl_lock_policy="all")
        rebuilt = SimConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_unknown_field_rejected(self):
        data = SimConfig().to_dict()
        data["does_not_exist"] = 1
        with pytest.raises(ConfigurationError):
            SimConfig.from_dict(data)

    def test_from_dict_validates(self):
        data = SimConfig().to_dict()
        data["retry_threshold"] = 0
        with pytest.raises(ConfigurationError):
            SimConfig.from_dict(data)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SimConfig().num_cores = 1

    def test_replaced_sees_every_field(self):
        # The dataclass derivation is what guarantees new fields cannot
        # be silently dropped: replaced() goes through dataclasses.replace.
        original = SimConfig()
        for field in dataclasses.fields(SimConfig):
            clone = original.replaced()
            assert getattr(clone, field.name) == getattr(original, field.name)

    def test_fingerprint_changes_with_any_field(self):
        base = SimConfig().fingerprint()
        assert SimConfig(retry_threshold=2).fingerprint() != base
        assert SimConfig(mem_latency=81).fingerprint() != base
        assert SimConfig().fingerprint() == base

    def test_fingerprint_is_sha256_hex(self):
        fingerprint = SimConfig().fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestEnergyRoundTrip:
    def test_round_trip(self):
        breakdown = EnergyBreakdown(static=12.5, dynamic=30.25)
        rebuilt = EnergyBreakdown.from_dict(
            json.loads(json.dumps(breakdown.to_dict()))
        )
        assert rebuilt.static == breakdown.static
        assert rebuilt.dynamic == breakdown.dynamic
        assert rebuilt.total == breakdown.total


class TestRunResultRoundTrip:
    def test_json_round_trip_is_lossless(self):
        result = sample_result()
        data = json.loads(json.dumps(result.to_dict()))
        rebuilt = RunResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()

    def test_rebuilt_metrics_match(self):
        result = sample_result()
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.cycles == result.cycles
        assert rebuilt.aborts_per_commit == result.aborts_per_commit
        assert rebuilt.energy.total == result.energy.total
        assert rebuilt.config == result.config
        assert rebuilt.seed == result.seed
        assert rebuilt.workload_name == result.workload_name

    def test_stats_enums_and_region_tuples_survive(self):
        result = sample_result()
        rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.stats.commits_by_mode == result.stats.commits_by_mode
        assert rebuilt.stats.aborts_by_reason == result.stats.aborts_by_reason
        assert (rebuilt.stats.aborts_by_category
                == result.stats.aborts_by_category)
        assert (rebuilt.stats.per_region_commits
                == result.stats.per_region_commits)
        assert all(
            isinstance(region, tuple)
            for region in rebuilt.stats.per_region_commits
        )

    def test_derived_figure_metrics_match(self):
        result = sample_result()
        rebuilt = RunResult.from_dict(result.to_dict())
        assert (rebuilt.stats.commit_mode_shares()
                == result.stats.commit_mode_shares())
        assert rebuilt.stats.retry_shares() == result.stats.retry_shares()
        assert (rebuilt.stats.discovery_time_fraction()
                == result.stats.discovery_time_fraction())
        assert (rebuilt.stats.first_retry_immutable_ratio()
                == result.stats.first_retry_immutable_ratio())


class TestMachineStatsRoundTrip:
    def test_empty_stats_round_trip(self):
        stats = MachineStats(num_cores=2)
        rebuilt = MachineStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        )
        assert rebuilt.to_dict() == stats.to_dict()

    def test_core_counters_survive(self):
        stats = sample_result().stats
        rebuilt = MachineStats.from_dict(stats.to_dict())
        assert len(rebuilt.cores) == len(stats.cores)
        for mine, theirs in zip(rebuilt.cores, stats.cores):
            assert mine.to_dict() == theirs.to_dict()


class TestAggregateRoundTrip:
    def test_json_round_trip(self):
        config = SimConfig.for_design("baseline", num_cores=4)
        aggregate = run_seeds(
            lambda: make_workload("mwobject", ops_per_thread=4), config,
            seeds=(1, 2), trim=0,
        )
        rebuilt = AggregateResult.from_dict(
            json.loads(json.dumps(aggregate.to_dict()))
        )
        assert rebuilt.cycles == aggregate.cycles
        assert rebuilt.energy == aggregate.energy
        assert rebuilt.trim == aggregate.trim
        assert len(rebuilt.runs) == 2
        assert rebuilt.to_dict() == aggregate.to_dict()
