"""Unit tests for the hardened DiskCache (size bound, quarantine, ENOSPC)."""

import json
import os
import time

import pytest

from repro.sim.engine import SCHEMA_VERSION, DiskCache
from repro.sim.enginefaults import EngineFaultPlan, FaultyIO


def fill(cache, key, payload_bytes=64):
    """Store a result whose entry is roughly ``payload_bytes`` on disk."""
    cache.store(key, {"pad": "x" * payload_bytes})


def entry_keys(cache):
    keys = set()
    for shard in os.listdir(cache.root):
        if len(shard) != 2:
            continue
        for name in os.listdir(os.path.join(cache.root, shard)):
            if name.endswith(".json"):
                keys.add(name[:-5])
    return keys


class TestTempFileHygiene:
    def test_failed_serialization_leaves_no_temp_litter(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        with pytest.raises(TypeError):
            cache.store("badkey", {"payload": object()})  # not serializable
        litter = [
            name
            for _, _, names in os.walk(str(tmp_path / "cache"))
            for name in names
            if name.endswith(".tmp")
        ]
        assert litter == []

    def test_failed_store_then_good_store_works(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        with pytest.raises(TypeError):
            cache.store("key", {"payload": object()})
        cache.store("key", {"payload": 1})
        assert cache.load("key") == {"payload": 1}


class TestQuarantine:
    def test_corrupt_entry_moved_and_counted(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        cache.store("deadbeef", {"v": 1})
        with open(cache._path("deadbeef"), "wb") as handle:
            handle.write(b"\x00not json at all")
        assert cache.load("deadbeef") is None
        assert cache.stats.corrupt_quarantined == 1
        quarantined = os.path.join(
            cache.root, DiskCache.QUARANTINE_DIR, "deadbeef.json"
        )
        assert os.path.exists(quarantined)
        assert not os.path.exists(cache._path("deadbeef"))

    def test_malformed_object_quarantined(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        cache.store("deadbeef", {"v": 1})
        with open(cache._path("deadbeef"), "w") as handle:
            json.dump({"schema_version": SCHEMA_VERSION}, handle)  # no result
        assert cache.load("deadbeef") is None
        assert cache.stats.corrupt_quarantined == 1

    def test_stale_schema_is_plain_miss_not_quarantine(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        cache.store("deadbeef", {"v": 1})
        with open(cache._path("deadbeef"), "w") as handle:
            json.dump({"schema_version": SCHEMA_VERSION - 1, "result": {}},
                      handle)
        assert cache.load("deadbeef") is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt_quarantined == 0
        assert os.path.exists(cache._path("deadbeef"))

    def test_quarantined_key_rewritable(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        cache.store("deadbeef", {"v": 1})
        with open(cache._path("deadbeef"), "wb") as handle:
            handle.write(b"garbage")
        assert cache.load("deadbeef") is None
        cache.store("deadbeef", {"v": 2})
        assert cache.load("deadbeef") == {"v": 2}


class TestEviction:
    def test_no_bound_never_evicts(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        for i in range(10):
            fill(cache, "key%02d" % i)
        assert cache.stats.evictions == 0
        assert len(entry_keys(cache)) == 10

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(str(tmp_path / "cache"), max_bytes=0)

    def test_lru_evicts_oldest_first(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"), max_bytes=300)
        for i in range(6):
            fill(cache, "key%02d" % i)
            os.utime(cache._path("key%02d" % i), (i, i))  # force mtime order
            cache.begin_sweep()  # unpin so eviction can act
        fill(cache, "newkey")
        assert cache.stats.evictions > 0
        survivors = entry_keys(cache)
        assert "newkey" in survivors
        assert "key00" not in survivors  # oldest went first

    def test_load_refreshes_recency(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"), max_bytes=300)
        for i in range(6):
            fill(cache, "key%02d" % i)
            os.utime(cache._path("key%02d" % i), (i, i))
        cache.begin_sweep()
        assert cache.load("key00") is not None  # touch + pin the oldest
        fill(cache, "newkey")
        survivors = entry_keys(cache)
        assert "key00" in survivors
        assert "key01" not in survivors  # next-oldest evicted instead

    def test_pinned_entries_never_evicted(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"), max_bytes=200)
        for i in range(5):
            fill(cache, "key%02d" % i)
        # Everything stored this sweep is pinned: bound exceeded, no evictions.
        assert cache.stats.evictions == 0
        assert len(entry_keys(cache)) == 5
        cache.begin_sweep()  # next sweep: pins cleared
        fill(cache, "newkey")
        assert cache.stats.evictions > 0
        assert "newkey" in entry_keys(cache)

    def test_eviction_counts_bytes(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"), max_bytes=150)
        fill(cache, "key00")
        cache.begin_sweep()
        fill(cache, "key01")
        fill(cache, "key02")
        assert cache.stats.evicted_bytes > 0
        assert cache.stats.evictions >= 1


class TestEnospcDegradation:
    def make_degraded(self, tmp_path):
        io = FaultyIO(EngineFaultPlan(seed=1, enospc_rate=1.0))
        cache = DiskCache(str(tmp_path / "cache"), io=io)
        cache.store("key", {"v": 1})
        return cache

    def test_enospc_disables_cache(self, tmp_path):
        cache = self.make_degraded(tmp_path)
        assert cache.disabled
        assert cache.stats.enospc_degraded

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = self.make_degraded(tmp_path)
        cache.store("other", {"v": 2})  # must not raise
        assert cache.load("other") is None
        assert cache.load("key") is None

    def test_other_oserrors_propagate(self, tmp_path):
        class ExplodingIO(FaultyIO):
            def write_atomic(self, path, data):
                raise OSError("not enospc")

        cache = DiskCache(str(tmp_path / "cache"),
                          io=ExplodingIO(EngineFaultPlan()))
        with pytest.raises(OSError):
            cache.store("key", {"v": 1})
        assert not cache.disabled


class TestLocking:
    def test_lock_file_created_on_store(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        cache.store("key", {"v": 1})
        assert os.path.exists(
            os.path.join(cache.root, DiskCache.LOCK_NAME)
        )

    def test_lock_file_not_an_entry(self, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"), max_bytes=10_000)
        cache.store("key", {"v": 1})
        assert entry_keys(cache) == {"key"}

    def test_two_handles_same_root_interleave(self, tmp_path):
        a = DiskCache(str(tmp_path / "cache"))
        b = DiskCache(str(tmp_path / "cache"))
        a.store("key-a", {"v": 1})
        b.store("key-b", {"v": 2})
        assert a.load("key-b") == {"v": 2}
        assert b.load("key-a") == {"v": 1}
