"""Unit tests for address arithmetic."""

import pytest

from repro.common.constants import CACHELINE_BYTES, WORD_BYTES, WORDS_PER_LINE
from repro.memory.address import (
    directory_set_of_line,
    lexicographical_key,
    line_of_word,
    word_of_line,
)


class TestConstants:
    def test_line_holds_eight_words(self):
        assert WORDS_PER_LINE == 8
        assert CACHELINE_BYTES == WORDS_PER_LINE * WORD_BYTES


class TestLineMapping:
    def test_first_line(self):
        assert line_of_word(0) == 0
        assert line_of_word(7) == 0

    def test_second_line(self):
        assert line_of_word(8) == 1
        assert line_of_word(15) == 1

    def test_round_trip(self):
        for line in (0, 1, 17, 1000):
            assert line_of_word(word_of_line(line)) == line

    def test_words_of_same_line_map_together(self):
        base = word_of_line(42)
        assert all(line_of_word(base + offset) == 42 for offset in range(8))


class TestDirectorySet:
    def test_modulo_mapping(self):
        assert directory_set_of_line(0, 16) == 0
        assert directory_set_of_line(17, 16) == 1
        assert directory_set_of_line(16, 16) == 0

    def test_rejects_non_positive_sets(self):
        with pytest.raises(ValueError):
            directory_set_of_line(1, 0)

    def test_lexicographical_key_orders_by_set_then_line(self):
        # lines 1 and 17 share set 1 (16 sets); 2 is in set 2.
        key_1 = lexicographical_key(1, 16)
        key_17 = lexicographical_key(17, 16)
        key_2 = lexicographical_key(2, 16)
        assert key_1 < key_17  # same set, lower line first
        assert key_17 < key_2  # lower set before higher set

    def test_lexicographical_key_total_order(self):
        keys = [lexicographical_key(line, 8) for line in range(64)]
        assert len(set(keys)) == 64
