"""Unit tests for the discovery phase and its assessments."""

from repro.core.discovery import DiscoveryState


def make_discovery(sq=4, alt=4, coreside=True):
    return DiscoveryState(
        "region",
        dir_set_of=lambda line: line % 4,
        can_coreside=lambda lines: coreside,
        sq_capacity=sq,
        alt_entries=alt,
    )


class TestTracking:
    def test_loads_and_stores_counted(self):
        discovery = make_discovery()
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        assert discovery.load_count == 1
        assert discovery.store_count == 1
        assert discovery.op_count == 2

    def test_footprint_recorded_in_alt(self):
        discovery = make_discovery()
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        assert 1 in discovery.alt
        assert 2 in discovery.alt
        assert discovery.alt.entry(2).needs_locking
        assert not discovery.alt.entry(1).needs_locking

    def test_compute_counts_ops_only(self):
        discovery = make_discovery()
        discovery.on_compute(5)
        assert discovery.op_count == 5
        assert len(discovery.alt) == 0


class TestIndirection:
    def test_tainted_load_address_poisons(self):
        discovery = make_discovery()
        discovery.on_load(1, True)
        assert discovery.indirection_seen

    def test_tainted_store_address_poisons(self):
        discovery = make_discovery()
        discovery.on_store(1, True)
        assert discovery.indirection_seen

    def test_tainted_branch_poisons(self):
        # §3: control dependencies are treated like data dependencies.
        discovery = make_discovery()
        discovery.on_branch(True)
        assert discovery.indirection_seen

    def test_clean_ops_do_not_poison(self):
        discovery = make_discovery()
        discovery.on_load(1, False)
        discovery.on_branch(False)
        assert not discovery.indirection_seen


class TestResourceLimits:
    def test_sq_overflow_detected(self):
        discovery = make_discovery(sq=2)
        for line in range(3):
            discovery.on_store(line, False)
        assert discovery.sq_overflow
        assert discovery.exhausted

    def test_alt_overflow_detected(self):
        discovery = make_discovery(alt=2)
        for line in range(3):
            discovery.on_load(line, False)
        assert discovery.alt_overflow
        assert discovery.exhausted

    def test_repeated_lines_do_not_overflow_alt(self):
        discovery = make_discovery(alt=2)
        for _ in range(10):
            discovery.on_load(1, False)
        assert not discovery.alt_overflow

    def test_failed_mode_flag(self):
        discovery = make_discovery()
        assert not discovery.failed
        discovery.enter_failed_mode()
        assert discovery.failed


class TestAssessment:
    def test_clean_small_region_is_nscl_material(self):
        discovery = make_discovery()
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        assessment = discovery.assess()
        assert assessment.fits_window
        assert assessment.lockable
        assert assessment.immutable
        assert assessment.footprint == [1, 2] or sorted(assessment.footprint) == [1, 2]

    def test_indirection_breaks_immutability_only(self):
        discovery = make_discovery()
        discovery.on_load(1, True)
        assessment = discovery.assess()
        assert assessment.lockable
        assert not assessment.immutable

    def test_sq_overflow_breaks_window(self):
        discovery = make_discovery(sq=1)
        discovery.on_store(1, False)
        discovery.on_store(2, False)
        assessment = discovery.assess()
        assert not assessment.fits_window
        assert not assessment.lockable

    def test_unlockable_cache_geometry(self):
        discovery = make_discovery(coreside=False)
        discovery.on_load(1, False)
        assessment = discovery.assess()
        assert assessment.fits_window
        assert not assessment.lockable

    def test_footprint_in_lexicographical_order(self):
        discovery = make_discovery(alt=8)
        for line in (6, 1, 4):
            discovery.on_load(line, False)
        assessment = discovery.assess()
        keys = [(line % 4, line) for line in assessment.footprint]
        assert keys == sorted(keys)
