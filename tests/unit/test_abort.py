"""Unit tests for the abort taxonomy."""

from repro.htm.abort import (
    AbortCategory,
    AbortReason,
    categorize_abort,
    counts_toward_retry_limit,
)


class TestCategorization:
    def test_memory_conflict_category(self):
        assert categorize_abort(AbortReason.MEMORY_CONFLICT) is AbortCategory.MEMORY_CONFLICT

    def test_nack_counts_as_memory_conflict(self):
        assert categorize_abort(AbortReason.NACKED) is AbortCategory.MEMORY_CONFLICT

    def test_explicit_fallback_category(self):
        assert categorize_abort(AbortReason.EXPLICIT_FALLBACK) is AbortCategory.EXPLICIT_FALLBACK

    def test_other_fallback_category(self):
        assert categorize_abort(AbortReason.OTHER_FALLBACK) is AbortCategory.OTHER_FALLBACK

    def test_capacity_is_others(self):
        assert categorize_abort(AbortReason.CAPACITY) is AbortCategory.OTHERS

    def test_every_reason_categorized(self):
        for reason in AbortReason:
            assert categorize_abort(reason) in AbortCategory


class TestRetryCounting:
    def test_memory_conflict_counts(self):
        assert counts_toward_retry_limit(AbortReason.MEMORY_CONFLICT)

    def test_fallback_aborts_do_not_count(self):
        # Paper §7: aborts caused by the fallback lock do not advance the
        # counter toward the fallback path.
        assert not counts_toward_retry_limit(AbortReason.EXPLICIT_FALLBACK)
        assert not counts_toward_retry_limit(AbortReason.OTHER_FALLBACK)

    def test_capacity_counts(self):
        assert counts_toward_retry_limit(AbortReason.CAPACITY)

    def test_nacks_do_not_count(self):
        # A NACK means a power-mode or cacheline-locked holder is about
        # to finish; serializing the nacked AR would be counterproductive.
        assert not counts_toward_retry_limit(AbortReason.NACKED)
