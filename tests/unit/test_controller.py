"""Unit tests for the per-core CLEAR controller."""

from repro.core.controller import ClearController
from repro.core.ert import SQ_FULL_COUNTER_MAX
from repro.core.modes import ExecMode


def make_controller(coreside=True, **kwargs):
    return ClearController(
        core=0,
        dir_set_of=lambda line: line % 4,
        can_coreside=lambda lines: coreside,
        **kwargs
    )


class TestBeginInvocation:
    def test_discovery_by_default(self):
        controller = make_controller()
        assert controller.begin_invocation("r") is not None
        assert controller.discoveries_started == 1

    def test_non_convertible_skips_discovery(self):
        controller = make_controller()
        controller.ert.ensure("r").is_convertible = False
        assert controller.begin_invocation("r") is None

    def test_saturated_sq_counter_skips_discovery(self):
        controller = make_controller()
        entry = controller.ert.ensure("r")
        for _ in range(SQ_FULL_COUNTER_MAX):
            entry.note_sq_overflow()
        assert controller.begin_invocation("r") is None

    def test_regions_tracked_independently(self):
        controller = make_controller()
        controller.ert.ensure("a").is_convertible = False
        assert controller.begin_invocation("a") is None
        assert controller.begin_invocation("b") is not None


class TestConflictHandling:
    def test_note_conflict_enters_failed_mode_once(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        controller.note_conflict(discovery)
        controller.note_conflict(discovery)
        assert discovery.failed
        assert controller.discoveries_failed_mode == 1


class TestConcludeFailed:
    def test_immutable_small_region_decides_nscl(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        decision = controller.conclude_failed_discovery(discovery)
        assert decision.mode is ExecMode.NS_CL
        entry = controller.ert.ensure("r")
        assert entry.is_convertible
        assert entry.is_immutable

    def test_tainted_region_with_writes_decides_scl(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, True)
        discovery.on_store(2, False)
        decision = controller.conclude_failed_discovery(discovery)
        assert decision.mode is ExecMode.S_CL
        assert not controller.ert.ensure("r").is_immutable

    def test_tainted_read_only_region_retries_speculatively(self):
        # A read-only AR has nothing for cacheline locking to protect;
        # exclusively locking its conflicted reads would only serialize
        # every other reader.
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, True)
        decision = controller.conclude_failed_discovery(discovery)
        assert decision.mode is ExecMode.SPECULATIVE
        assert "read-only" in decision.reason

    def test_immutable_read_only_region_still_converts_to_nscl(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        decision = controller.conclude_failed_discovery(discovery)
        assert decision.mode is ExecMode.NS_CL

    def test_sq_overflow_counts_and_decides_speculative(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.sq_overflow = True
        decision = controller.conclude_failed_discovery(discovery)
        assert decision.mode is ExecMode.SPECULATIVE
        assert controller.ert.ensure("r").sq_full_counter == 1

    def test_unlockable_region_marked_non_convertible(self):
        controller = make_controller(coreside=False)
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        controller.conclude_failed_discovery(discovery)
        assert not controller.ert.ensure("r").is_convertible


class TestConcludeCommitted:
    def test_commit_decrements_counter(self):
        controller = make_controller()
        controller.ert.ensure("r").note_sq_overflow()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        controller.conclude_committed_discovery(discovery)
        assert controller.ert.ensure("r").sq_full_counter == 0

    def test_oversized_committed_region_disables_conversion(self):
        controller = make_controller(alt_entries=2)
        discovery = controller.begin_invocation("r")
        for line in range(4):
            discovery.on_load(line, False)
        controller.conclude_committed_discovery(discovery)
        assert not controller.ert.ensure("r").is_convertible

    def test_committed_taint_updates_immutability(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, True)
        controller.conclude_committed_discovery(discovery)
        assert not controller.ert.ensure("r").is_immutable


class TestLockPlans:
    def test_nscl_plan_locks_everything(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        plan = controller.prepare_lock_plan(discovery, ExecMode.NS_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {1, 2}

    def test_scl_plan_locks_writes_only(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        plan = controller.prepare_lock_plan(discovery, ExecMode.S_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {2}

    def test_scl_plan_promotes_crt_reads(self):
        # §5.1: reads that conflicted in the past are locked too.
        controller = make_controller()
        controller.note_scl_conflicting_read(1)
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        plan = controller.prepare_lock_plan(discovery, ExecMode.S_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {1, 2}

    def test_plan_rejects_non_cl_modes(self):
        controller = make_controller()
        discovery = controller.begin_invocation("r")
        try:
            controller.prepare_lock_plan(discovery, ExecMode.SPECULATIVE)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestNonDiscoverable:
    def test_mark_non_discoverable(self):
        controller = make_controller()
        controller.mark_non_discoverable("r")
        assert not controller.ert.ensure("r").is_convertible
        assert controller.begin_invocation("r") is None
