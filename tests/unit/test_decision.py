"""Unit tests for the Fig. 2 decision tree."""

from repro.core.decision import decide_retry_mode
from repro.core.discovery import DiscoveryAssessment
from repro.core.modes import ExecMode


def assessment(fits=True, lockable=True, immutable=True):
    return DiscoveryAssessment(
        fits_window=fits,
        lockable=lockable,
        immutable=immutable,
        sq_overflow=not fits,
        alt_overflow=False,
        footprint=[1, 2],
    )


class TestDecisionTree:
    def test_immutable_lockable_goes_nscl(self):
        decision = decide_retry_mode(assessment())
        assert decision.mode is ExecMode.NS_CL

    def test_mutable_lockable_goes_scl(self):
        decision = decide_retry_mode(assessment(immutable=False))
        assert decision.mode is ExecMode.S_CL

    def test_mutable_read_only_goes_speculative(self):
        decision = decide_retry_mode(assessment(immutable=False), has_writes=False)
        assert decision.mode is ExecMode.SPECULATIVE

    def test_immutable_read_only_still_nscl(self):
        decision = decide_retry_mode(assessment(immutable=True), has_writes=False)
        assert decision.mode is ExecMode.NS_CL

    def test_unlockable_goes_speculative(self):
        decision = decide_retry_mode(assessment(lockable=False))
        assert decision.mode is ExecMode.SPECULATIVE

    def test_window_overflow_goes_speculative(self):
        decision = decide_retry_mode(assessment(fits=False, lockable=False))
        assert decision.mode is ExecMode.SPECULATIVE

    def test_overflow_dominates_immutability(self):
        decision = decide_retry_mode(
            assessment(fits=False, lockable=False, immutable=True)
        )
        assert decision.mode is ExecMode.SPECULATIVE

    def test_reasons_are_informative(self):
        assert "immutable" in decide_retry_mode(assessment()).reason
        assert "indirection" in decide_retry_mode(assessment(immutable=False)).reason


class TestModeProperties:
    def test_cl_modes(self):
        assert ExecMode.NS_CL.is_cacheline_locked
        assert ExecMode.S_CL.is_cacheline_locked
        assert not ExecMode.SPECULATIVE.is_cacheline_locked
        assert not ExecMode.FALLBACK.is_cacheline_locked

    def test_speculative_modes(self):
        assert ExecMode.SPECULATIVE.is_speculative
        assert ExecMode.FAILED_DISCOVERY.is_speculative
        assert ExecMode.S_CL.is_speculative
        assert not ExecMode.NS_CL.is_speculative
        assert not ExecMode.FALLBACK.is_speculative
