"""Unit tests for the cacheline lock manager."""

import pytest

from repro.common.errors import ProtocolError
from repro.memory.locking import LockDenied, LockManager, NackError


class TestLockAcquire:
    def test_lock_free_line(self):
        locks = LockManager()
        assert locks.try_lock(0, 10)
        assert locks.holder(10) == 0
        assert locks.is_locked(10)

    def test_relock_own_line_idempotent(self):
        locks = LockManager()
        locks.try_lock(0, 10)
        assert locks.try_lock(0, 10)
        assert locks.held_lines(0) == {10}

    def test_lock_contended_line_denied(self):
        locks = LockManager()
        locks.try_lock(0, 10)
        with pytest.raises(LockDenied) as info:
            locks.try_lock(1, 10)
        assert info.value.holder == 0
        assert info.value.line == 10


class TestAccessGate:
    def test_unlocked_line_passes(self):
        LockManager().check_access(0, 5, nackable=True)

    def test_holder_passes(self):
        locks = LockManager()
        locks.try_lock(0, 5)
        locks.check_access(0, 5, nackable=True)

    def test_nackable_access_nacked(self):
        locks = LockManager()
        locks.try_lock(0, 5)
        with pytest.raises(NackError) as info:
            locks.check_access(1, 5, nackable=True)
        assert info.value.holder == 0

    def test_non_nackable_access_waits(self):
        locks = LockManager()
        locks.try_lock(0, 5)
        with pytest.raises(LockDenied):
            locks.check_access(1, 5, nackable=False)


class TestRelease:
    def test_unlock_frees_line(self):
        locks = LockManager()
        locks.try_lock(0, 5)
        locks.unlock(0, 5)
        assert not locks.is_locked(5)
        assert locks.held_lines(0) == set()

    def test_unlock_foreign_line_raises(self):
        locks = LockManager()
        locks.try_lock(0, 5)
        with pytest.raises(ProtocolError):
            locks.unlock(1, 5)

    def test_bulk_release(self):
        locks = LockManager()
        for line in (1, 2, 3):
            locks.try_lock(0, line)
        released = locks.unlock_all(0)
        assert released == {1, 2, 3}
        assert locks.locked_line_count() == 0

    def test_bulk_release_only_own_lines(self):
        locks = LockManager()
        locks.try_lock(0, 1)
        locks.try_lock(1, 2)
        locks.unlock_all(0)
        assert locks.is_locked(2)
        assert not locks.is_locked(1)

    def test_bulk_release_empty_ok(self):
        assert LockManager().unlock_all(3) == set()

    def test_held_lines_is_copy(self):
        locks = LockManager()
        locks.try_lock(0, 1)
        view = locks.held_lines(0)
        view.add(99)
        assert locks.held_lines(0) == {1}
