"""Unit tests for the coherence directory."""

from repro.memory.directory import Directory


class TestReadTransitions:
    def test_first_read_registers_sharer(self):
        directory = Directory(16)
        assert directory.record_read(0, 5) is None
        assert directory.holders(5) == {0}

    def test_second_reader_added(self):
        directory = Directory(16)
        directory.record_read(0, 5)
        directory.record_read(1, 5)
        assert directory.holders(5) == {0, 1}

    def test_read_downgrades_remote_owner(self):
        directory = Directory(16)
        directory.record_write(0, 5)
        previous = directory.record_read(1, 5)
        assert previous == 0
        assert not directory.is_owner(0, 5)
        assert directory.holders(5) == {0, 1}

    def test_owner_rereading_keeps_ownership(self):
        directory = Directory(16)
        directory.record_write(0, 5)
        assert directory.record_read(0, 5) is None
        # Reading your own modified line must not demote you.
        assert directory.holders(5) == {0}


class TestWriteTransitions:
    def test_write_takes_ownership(self):
        directory = Directory(16)
        directory.record_write(2, 7)
        assert directory.is_owner(2, 7)

    def test_write_invalidates_sharers(self):
        directory = Directory(16)
        directory.record_read(0, 7)
        directory.record_read(1, 7)
        previous, invalidated = directory.record_write(2, 7)
        assert previous is None
        assert invalidated == {0, 1}
        assert directory.holders(7) == {2}

    def test_write_steals_from_remote_owner(self):
        directory = Directory(16)
        directory.record_write(0, 7)
        previous, invalidated = directory.record_write(1, 7)
        assert previous == 0
        assert invalidated == {0}
        assert directory.is_owner(1, 7)

    def test_own_upgrade_invalidates_nobody_self(self):
        directory = Directory(16)
        directory.record_read(0, 7)
        previous, invalidated = directory.record_write(0, 7)
        assert previous is None
        assert 0 not in invalidated


class TestDrop:
    def test_drop_removes_holder(self):
        directory = Directory(16)
        directory.record_read(0, 3)
        directory.drop(0, 3)
        assert directory.holders(3) == set()

    def test_drop_owner_clears_ownership(self):
        directory = Directory(16)
        directory.record_write(0, 3)
        directory.drop(0, 3)
        assert not directory.is_owner(0, 3)

    def test_drop_unknown_line_is_noop(self):
        Directory(16).drop(0, 99)

    def test_idle_entries_garbage_collected(self):
        directory = Directory(16)
        directory.record_read(0, 3)
        directory.drop(0, 3)
        assert 3 not in directory._entries


class TestSetLocks:
    def test_lock_then_conflict(self):
        directory = Directory(16)
        assert directory.lock_set(0, 4)
        assert not directory.lock_set(1, 4)
        assert directory.set_lock_holder(4) == 0

    def test_relock_by_holder_ok(self):
        directory = Directory(16)
        directory.lock_set(0, 4)
        assert directory.lock_set(0, 4)

    def test_unlock_frees(self):
        directory = Directory(16)
        directory.lock_set(0, 4)
        directory.unlock_set(0, 4)
        assert directory.set_lock_holder(4) is None
        assert directory.lock_set(1, 4)

    def test_unlock_by_non_holder_ignored(self):
        directory = Directory(16)
        directory.lock_set(0, 4)
        directory.unlock_set(1, 4)
        assert directory.set_lock_holder(4) == 0

    def test_set_of_uses_configured_sets(self):
        directory = Directory(8)
        assert directory.set_of(9) == 1
