"""Unit tests for the schedule-exploration building blocks.

Covers the scheduler policies themselves (tie-break behaviour,
determinism, replay clamping), the ddmin shrinker, the retry-bound
oracle's bookkeeping, and the ScheduleArtifact JSON format — all
without running a machine; the integration suite does that.
"""

import pytest

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.sim.config import SimConfig
from repro.verify import (
    DefaultScheduler,
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    RetryLedger,
    ScheduleArtifact,
    check_equivalence,
    check_retry_bound,
    ddmin,
    shrink_decisions,
)
from repro.verify.schedule import ARTIFACT_SCHEMA_VERSION


class TestDefaultScheduler:
    def test_always_picks_first(self):
        scheduler = DefaultScheduler()
        for ready in ([0, 1], [2, 5, 7], list(range(16))):
            assert scheduler.pick(10, ready) == 0


class TestRandomScheduler:
    def test_deterministic_per_seed(self):
        a, b = RandomScheduler(7), RandomScheduler(7)
        ready = [0, 1, 2, 3]
        assert [a.pick(t, ready) for t in range(50)] == [
            b.pick(t, ready) for t in range(50)
        ]

    def test_reset_rewinds_the_stream(self):
        scheduler = RandomScheduler(3)
        ready = [0, 1, 2]
        first = [scheduler.pick(t, ready) for t in range(20)]
        scheduler.reset()
        assert [scheduler.pick(t, ready) for t in range(20)] == first

    def test_seeds_diverge(self):
        ready = [0, 1, 2, 3, 4, 5, 6, 7]
        streams = {
            tuple(RandomScheduler(seed).pick(t, ready) for t in range(30))
            for seed in range(8)
        }
        assert len(streams) > 1

    def test_picks_stay_in_range(self):
        scheduler = RandomScheduler(1)
        for arity in (2, 3, 5):
            ready = list(range(arity))
            for t in range(40):
                assert 0 <= scheduler.pick(t, ready) < arity


class TestPCTScheduler:
    def test_deterministic_per_seed(self):
        a = PCTScheduler(5, num_cores=4)
        b = PCTScheduler(5, num_cores=4)
        ready = [0, 1, 2, 3]
        assert [a.pick(t, ready) for t in range(60)] == [
            b.pick(t, ready) for t in range(60)
        ]

    def test_reset_restores_priorities(self):
        scheduler = PCTScheduler(9, num_cores=4)
        ready = [0, 1, 2, 3]
        first = [scheduler.pick(t, ready) for t in range(60)]
        scheduler.reset()
        assert [scheduler.pick(t, ready) for t in range(60)] == first

    def test_priority_order_is_stable_between_change_points(self):
        # With depth=1 there are no change points at all, so the same
        # ready set must always resolve to the same pick.
        scheduler = PCTScheduler(2, num_cores=3, depth=1)
        ready = [0, 1, 2]
        picks = {scheduler.pick(t, ready) for t in range(30)}
        assert len(picks) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PCTScheduler(num_cores=0)
        with pytest.raises(ValueError):
            PCTScheduler(depth=0)


class TestReplayScheduler:
    def test_replays_decisions_in_order(self):
        scheduler = ReplayScheduler([1, 0, 2])
        assert scheduler.pick(0, [0, 1]) == 1
        assert scheduler.pick(1, [0, 1]) == 0
        assert scheduler.pick(2, [0, 1, 2]) == 2

    def test_defaults_past_the_end(self):
        scheduler = ReplayScheduler([1])
        assert scheduler.pick(0, [0, 1]) == 1
        for t in range(5):
            assert scheduler.pick(t, [0, 1, 2]) == 0

    def test_clamps_out_of_range_entries(self):
        scheduler = ReplayScheduler([9, -3])
        assert scheduler.pick(0, [0, 1]) == 1   # clamped down to arity-1
        assert scheduler.pick(1, [0, 1]) == 0   # clamped up to 0

    def test_reset_rewinds(self):
        scheduler = ReplayScheduler([1, 1])
        assert scheduler.pick(0, [0, 1]) == 1
        scheduler.reset()
        assert scheduler.pick(0, [0, 1]) == 1


class TestRecordingScheduler:
    def test_records_arity_and_choice(self):
        recording = RecordingScheduler(ReplayScheduler([1, 0, 1]))
        recording.pick(0, [0, 1])
        recording.pick(1, [0, 1, 2])
        recording.pick(2, [0, 1])
        assert recording.decisions == [1, 0, 1]
        assert recording.arities == [2, 3, 2]

    def test_clamps_a_misbehaving_inner(self):
        class Wild(DefaultScheduler):
            def pick(self, now, ready):
                return 99

        recording = RecordingScheduler(Wild())
        assert recording.pick(0, [0, 1]) == 1
        assert recording.decisions == [1]

    def test_reset_clears_the_trace(self):
        recording = RecordingScheduler(DefaultScheduler())
        recording.pick(0, [0, 1])
        recording.reset()
        assert recording.decisions == []
        assert recording.arities == []


class TestDdmin:
    def test_minimizes_to_the_culprit_pair(self):
        # The failure needs 3 AND 7 together; ddmin must find exactly that.
        predicate = lambda subset: 3 in subset and 7 in subset  # noqa: E731
        assert sorted(ddmin(list(range(10)), predicate)) == [3, 7]

    def test_single_culprit(self):
        predicate = lambda subset: 5 in subset  # noqa: E731
        assert ddmin(list(range(20)), predicate) == [5]

    def test_result_is_one_minimal(self):
        predicate = lambda s: {2, 4, 6} <= set(s)  # noqa: E731
        minimal = ddmin(list(range(8)), predicate)
        assert predicate(minimal)
        for index in range(len(minimal)):
            assert not predicate(minimal[:index] + minimal[index + 1:])

    def test_irreducible_input_survives(self):
        items = [1, 2, 3]
        predicate = lambda subset: subset == items  # noqa: E731
        assert ddmin(items, predicate) == items


class TestShrinkDecisions:
    def test_shrinks_to_single_needed_decision(self):
        # Failure iff position 4 picks choice 2; everything else is noise.
        still_fails = lambda d: len(d) > 4 and d[4] == 2  # noqa: E731
        assert shrink_decisions([1, 0, 1, 1, 2, 1, 0, 1], still_fails) == \
            [0, 0, 0, 0, 2]

    def test_schedule_independent_failure_shrinks_to_empty(self):
        assert shrink_decisions([1, 1, 1], lambda d: True) == []

    def test_rejects_a_passing_original(self):
        with pytest.raises(ValueError):
            shrink_decisions([1, 0], lambda d: False)


class _Outcome:
    """Minimal stand-in for ScheduleOutcome in equivalence tests."""

    def __init__(self, commit_counts, state_sha256):
        self.commit_counts = commit_counts
        self.state_sha256 = state_sha256


class TestCheckEquivalence:
    def test_identical_outcomes_pass(self):
        outcomes = [_Outcome([("r", 4)], "aa")] * 3
        assert check_equivalence(outcomes, expect_state_equal=True) == []

    def test_commit_count_divergence_is_flagged(self):
        outcomes = [
            _Outcome([("r", 4)], "aa"),
            _Outcome([("r", 3)], "aa"),
        ]
        found = check_equivalence(outcomes, expect_state_equal=False)
        assert [v["kind"] for v in found] == ["commit-count-divergence"]
        assert found[0]["details"]["schedule"] == 1

    def test_state_divergence_only_when_expected(self):
        outcomes = [
            _Outcome([("r", 4)], "aa"),
            _Outcome([("r", 4)], "bb"),
        ]
        assert check_equivalence(outcomes, expect_state_equal=False) == []
        found = check_equivalence(outcomes, expect_state_equal=True)
        assert [v["kind"] for v in found] == ["state-divergence"]


class TestRetryBoundOracle:
    def _config(self, threshold=4):
        return SimConfig(num_cores=2, retry_threshold=threshold)

    def _committed(self, ledger, core=0, mode=ExecMode.SPECULATIVE, retries=0):
        ledger.note_invoke(core, ("w", "r"))
        ledger.note_begin(core, mode)
        ledger.note_commit(core, mode, retries)

    def test_clean_ledger_passes(self):
        ledger = RetryLedger()
        self._committed(ledger)
        assert check_retry_bound(ledger, self._config()) == []

    def test_open_invocations_are_not_checked(self):
        ledger = RetryLedger()
        ledger.note_invoke(0, ("w", "r"))
        ledger.note_begin(0, ExecMode.SPECULATIVE)
        assert check_retry_bound(ledger, self._config()) == []

    def test_ns_cl_memory_conflict_is_flagged(self):
        ledger = RetryLedger()
        ledger.note_invoke(0, ("w", "r"))
        ledger.note_begin(0, ExecMode.NS_CL)
        ledger.note_abort(0, ExecMode.NS_CL, AbortReason.MEMORY_CONFLICT)
        ledger.note_begin(0, ExecMode.NS_CL)
        ledger.note_commit(0, ExecMode.NS_CL, 1)
        found = check_retry_bound(ledger, self._config())
        assert [v["kind"] for v in found] == ["ns-cl-abort-reason"]

    def test_ns_cl_footprint_deviation_is_allowed(self):
        ledger = RetryLedger()
        ledger.note_invoke(0, ("w", "r"))
        ledger.note_begin(0, ExecMode.NS_CL)
        ledger.note_abort(0, ExecMode.NS_CL, AbortReason.FOOTPRINT_DEVIATION)
        ledger.note_begin(0, ExecMode.SPECULATIVE)
        ledger.note_commit(0, ExecMode.SPECULATIVE, 1)
        assert check_retry_bound(ledger, self._config()) == []

    def test_second_speculative_after_ns_cl_breaks_the_bound(self):
        ledger = RetryLedger()
        ledger.note_invoke(0, ("w", "r"))
        ledger.note_begin(0, ExecMode.NS_CL)
        ledger.note_abort(0, ExecMode.SPECULATIVE, AbortReason.MEMORY_CONFLICT)
        ledger.note_begin(0, ExecMode.SPECULATIVE)
        ledger.note_abort(0, ExecMode.SPECULATIVE, AbortReason.MEMORY_CONFLICT)
        ledger.note_begin(0, ExecMode.SPECULATIVE)
        ledger.note_commit(0, ExecMode.SPECULATIVE, 3)
        found = check_retry_bound(ledger, self._config())
        assert [v["kind"] for v in found] == ["retry-bound"]
        assert found[0]["details"]["speculative_after"] == 2

    def test_exempt_reasons_void_the_bound(self):
        ledger = RetryLedger()
        ledger.note_invoke(0, ("w", "r"))
        ledger.note_begin(0, ExecMode.NS_CL)
        # A capacity abort exempts the whole invocation from the bound.
        ledger.note_abort(0, ExecMode.SPECULATIVE, AbortReason.CAPACITY)
        for _ in range(3):
            ledger.note_begin(0, ExecMode.SPECULATIVE)
        ledger.note_commit(0, ExecMode.SPECULATIVE, 3)
        assert check_retry_bound(ledger, self._config()) == []

    def test_premature_fallback_is_flagged(self):
        ledger = RetryLedger()
        self._committed(ledger, mode=ExecMode.FALLBACK, retries=1)
        found = check_retry_bound(ledger, self._config(threshold=4))
        assert [v["kind"] for v in found] == ["fallback-threshold"]

    def test_overdue_non_fallback_commit_is_flagged(self):
        ledger = RetryLedger()
        self._committed(ledger, mode=ExecMode.SPECULATIVE, retries=4)
        found = check_retry_bound(ledger, self._config(threshold=4))
        assert [v["kind"] for v in found] == ["fallback-threshold"]


class TestScheduleArtifact:
    def _artifact(self):
        return ScheduleArtifact(
            "mwobject", SimConfig.for_design("baseline", num_cores=2), 1, [0, 1, 0, 2],
            ops_per_thread=4,
            violations=[{"kind": "serializability", "message": "m",
                         "details": {"x": 1}}],
            decision_points=7,
            stats_sha256="s" * 64, state_sha256="t" * 64,
            notes="unit test artifact",
        )

    def test_dict_round_trip(self):
        artifact = self._artifact()
        rebuilt = ScheduleArtifact.from_dict(artifact.to_dict())
        assert rebuilt.to_dict() == artifact.to_dict()

    def test_json_round_trip(self):
        artifact = self._artifact()
        rebuilt = ScheduleArtifact.from_json(artifact.to_json())
        assert rebuilt.to_dict() == artifact.to_dict()

    def test_save_and_load(self, tmp_path):
        artifact = self._artifact()
        path = str(tmp_path / "artifact.json")
        artifact.save(path)
        assert ScheduleArtifact.load(path).to_dict() == artifact.to_dict()

    def test_rejects_foreign_schema(self):
        data = self._artifact().to_dict()
        data["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            ScheduleArtifact.from_dict(data)

    def test_scheduler_is_a_fresh_replayer(self):
        artifact = self._artifact()
        scheduler = artifact.scheduler()
        assert isinstance(scheduler, ReplayScheduler)
        assert scheduler.pick(0, [0, 1]) == 0
        assert scheduler.pick(1, [0, 1]) == 1
