"""Unit tests for transactional read/write sets."""

import pytest

from repro.htm.rwset import CapacityExceeded, ReadWriteSets
from repro.memory.shared import SharedMemory


def unlimited():
    return ReadWriteSets(l1_sets=None, l2_sets=None)


class TestTracking:
    def test_reads_and_writes_recorded(self):
        sets = unlimited()
        sets.record_read(1)
        sets.record_write(2)
        assert sets.read_set == {1}
        assert sets.write_set == {2}

    def test_duplicate_entries_collapsed(self):
        sets = unlimited()
        sets.record_read(1)
        sets.record_read(1)
        assert len(sets.read_set) == 1

    def test_touched_lines_unions(self):
        sets = unlimited()
        sets.record_read(1)
        sets.record_write(2)
        assert sets.touched_lines() == {1, 2}


class TestConflicts:
    def test_remote_write_conflicts_with_read(self):
        sets = unlimited()
        sets.record_read(1)
        assert sets.conflicts_with_write(1)
        assert not sets.conflicts_with_read(1)

    def test_remote_anything_conflicts_with_write(self):
        sets = unlimited()
        sets.record_write(1)
        assert sets.conflicts_with_write(1)
        assert sets.conflicts_with_read(1)

    def test_untracked_line_no_conflict(self):
        sets = unlimited()
        assert not sets.conflicts_with_write(9)
        assert not sets.conflicts_with_read(9)


class TestCapacity:
    def test_write_set_limited_by_l1_geometry(self):
        sets = ReadWriteSets(l1_sets=2, l1_assoc=1, l2_sets=None, l2_assoc=None)
        sets.record_write(0)
        with pytest.raises(CapacityExceeded) as info:
            sets.record_write(2)  # same L1 set (mod 2), only 1 way
        assert info.value.which == "write"

    def test_read_set_limited_by_l2_geometry(self):
        sets = ReadWriteSets(l1_sets=None, l1_assoc=None, l2_sets=2, l2_assoc=1)
        sets.record_read(0)
        with pytest.raises(CapacityExceeded):
            sets.record_read(2)

    def test_write_lines_count_against_read_tracking(self):
        sets = ReadWriteSets(l1_sets=None, l1_assoc=None, l2_sets=2, l2_assoc=1)
        sets.record_write(0)
        with pytest.raises(CapacityExceeded):
            sets.record_read(2)

    def test_different_sets_do_not_interfere(self):
        sets = ReadWriteSets(l1_sets=2, l1_assoc=1, l2_sets=None, l2_assoc=None)
        sets.record_write(0)
        sets.record_write(1)  # other set: fine
        assert len(sets.write_set) == 2


class TestStoreBuffer:
    def test_forwarding(self):
        sets = unlimited()
        sets.buffer_store(100, 7)
        assert sets.forwarded_load(100) == 7
        assert sets.forwarded_load(101) is None

    def test_drain_applies_in_order(self):
        sets = unlimited()
        memory = SharedMemory()
        sets.buffer_store(100, 1)
        sets.buffer_store(100, 2)  # later store wins
        sets.buffer_store(101, 3)
        sets.drain_to(memory)
        assert memory.peek(100) == 2
        assert memory.peek(101) == 3
        assert sets.store_buffer_entries == 0

    def test_discard_clears_everything(self):
        sets = unlimited()
        sets.record_read(1)
        sets.record_write(2)
        sets.buffer_store(100, 5)
        sets.discard()
        assert not sets.read_set
        assert not sets.write_set
        assert sets.forwarded_load(100) is None

    def test_written_lines_of_buffer(self):
        sets = unlimited()
        sets.buffer_store(0, 1)   # line 0
        sets.buffer_store(9, 1)   # line 1
        assert sets.written_lines_of_buffer() == {0, 1}


class TestCapacityCounters:
    """Pin the O(1) occupancy counters to the re-walk semantics."""

    def test_hot_set_overflows_before_total_capacity(self):
        # l1 of 4 sets x 2 ways holds 8 lines total, but three writes
        # mapping to the same set overflow after just two distinct sets
        # are touched — the per-set rule, not a total-size rule.
        sets = ReadWriteSets(l1_sets=4, l1_assoc=2, l2_sets=None, l2_assoc=None)
        sets.record_write(0)
        sets.record_write(4)
        sets.record_write(1)  # different set: fine
        with pytest.raises(CapacityExceeded) as info:
            sets.record_write(8)  # third line in set 0
        assert info.value.which == "write"
        assert info.value.line == 8

    def test_write_created_union_overflow_aborts_as_read(self):
        # Writes only check the write set against L1; a union overflow
        # they create must surface as a "read" abort on the next newly
        # read line, exactly like the legacy full re-walk did.
        sets = ReadWriteSets(l1_sets=None, l1_assoc=None, l2_sets=2, l2_assoc=1)
        sets.record_read(0)
        sets.record_write(2)  # union set 0 now over L2 assoc; no raise
        with pytest.raises(CapacityExceeded) as info:
            sets.record_read(5)  # unrelated set, still aborts
        assert info.value.which == "read"
        assert info.value.line == 5

    def test_read_then_write_same_line_counted_once(self):
        sets = ReadWriteSets(l1_sets=None, l1_assoc=None, l2_sets=2, l2_assoc=1)
        sets.record_read(0)
        sets.record_write(0)  # same line: union unchanged
        sets.record_read(5)   # other set, fine
        assert sets.counters_consistent()

    def test_write_then_read_same_line_counted_once(self):
        sets = ReadWriteSets(l1_sets=None, l1_assoc=None, l2_sets=2, l2_assoc=1)
        sets.record_write(0)
        sets.record_read(0)
        assert sets.counters_consistent()

    def test_duplicate_records_leave_counters_alone(self):
        sets = ReadWriteSets(l1_sets=4, l1_assoc=2, l2_sets=4, l2_assoc=2)
        for _ in range(3):
            sets.record_read(1)
            sets.record_write(2)
        assert sets.counters_consistent()

    def test_boundary_exactly_at_associativity_is_fine(self):
        sets = ReadWriteSets(l1_sets=2, l1_assoc=2, l2_sets=None, l2_assoc=None)
        sets.record_write(0)
        sets.record_write(2)  # exactly assoc ways in set 0
        assert sets.counters_consistent()
        with pytest.raises(CapacityExceeded):
            sets.record_write(4)

    def test_discard_resets_counters(self):
        sets = ReadWriteSets(l1_sets=2, l1_assoc=1, l2_sets=2, l2_assoc=1)
        sets.record_write(0)
        sets.discard()
        assert sets.counters_consistent()
        sets.record_write(0)  # would overflow if the old count survived
        sets.record_read(1)
        assert sets.counters_consistent()

    def test_counters_match_reference_fits(self):
        sets = ReadWriteSets(l1_sets=4, l1_assoc=2, l2_sets=4, l2_assoc=3)
        for line in (0, 1, 4, 5, 9):
            sets.record_read(line)
        for line in (0, 2, 6):
            sets.record_write(line)
        assert sets.counters_consistent()
        assert ReadWriteSets._fits(sets.write_set, 4, 2)
        assert ReadWriteSets._fits(sets.read_set | sets.write_set, 4, 3)
