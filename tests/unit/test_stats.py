"""Unit tests for the statistics surface."""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortCategory, AbortReason
from repro.sim.stats import MachineStats


def stats():
    return MachineStats(num_cores=2)


class TestCommitAccounting:
    def test_commit_counted_by_mode(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")
        machine_stats.record_commit(0, ExecMode.NS_CL, 1, "r")
        assert machine_stats.total_commits == 2
        assert machine_stats.commits_by_mode[ExecMode.NS_CL] == 1

    def test_retry_histogram_excludes_fallback(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 1, "r")
        machine_stats.record_commit(0, ExecMode.FALLBACK, 5, "r")
        assert machine_stats.commits_by_retries[1] == 1
        assert 5 not in machine_stats.commits_by_retries
        assert machine_stats.fallback_commit_retries[5] == 1

    def test_mode_shares_sum_to_one(self):
        machine_stats = stats()
        for mode in (ExecMode.SPECULATIVE, ExecMode.S_CL, ExecMode.FALLBACK):
            machine_stats.record_commit(0, mode, 0, "r")
        assert abs(sum(machine_stats.commit_mode_shares().values()) - 1.0) < 1e-9


class TestAbortAccounting:
    def test_aborts_categorized(self):
        machine_stats = stats()
        machine_stats.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
        machine_stats.record_abort(0, AbortReason.NACKED, "r")
        machine_stats.record_abort(1, AbortReason.CAPACITY, "r")
        shares = machine_stats.abort_category_shares()
        assert abs(shares[AbortCategory.MEMORY_CONFLICT] - 2 / 3) < 1e-9
        assert abs(shares[AbortCategory.OTHERS] - 1 / 3) < 1e-9

    def test_aborts_per_commit(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")
        machine_stats.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
        machine_stats.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
        assert machine_stats.aborts_per_commit() == 2.0

    def test_aborts_per_commit_zero_commits(self):
        machine_stats = stats()
        machine_stats.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
        assert machine_stats.aborts_per_commit() == 0.0


class TestRetryShares:
    def test_no_retries_all_zero(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")
        assert machine_stats.retry_shares() == (0.0, 0.0, 0.0)

    def test_first_retry_share(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")  # excluded
        machine_stats.record_commit(0, ExecMode.NS_CL, 1, "r")
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 3, "r")
        machine_stats.record_commit(0, ExecMode.FALLBACK, 5, "r")
        first, n_retry, fallback = machine_stats.retry_shares()
        assert abs(first - 1 / 3) < 1e-9
        assert abs(n_retry - 1 / 3) < 1e-9
        assert abs(fallback - 1 / 3) < 1e-9

    def test_shares_sum_to_one_when_retries_exist(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 2, "r")
        assert abs(sum(machine_stats.retry_shares()) - 1.0) < 1e-9


class TestCycleAccounting:
    def test_busy_and_discovery_cycles(self):
        machine_stats = stats()
        machine_stats.add_busy(0, 10)
        machine_stats.add_busy(0, 5, failed_discovery=True)
        assert machine_stats.cores[0].busy_cycles == 15
        assert machine_stats.cores[0].discovery_failed_cycles == 5
        assert abs(machine_stats.discovery_time_fraction() - 5 / 15) < 1e-9

    def test_discovery_fraction_zero_when_idle(self):
        assert stats().discovery_time_fraction() == 0.0

    def test_wait_cycles(self):
        machine_stats = stats()
        machine_stats.add_wait(1, 7)
        assert machine_stats.cores[1].wait_cycles == 7


class TestFig1Instrumentation:
    def test_ratio(self):
        machine_stats = stats()
        machine_stats.record_first_retry(True)
        machine_stats.record_first_retry(False)
        machine_stats.record_first_retry(True)
        assert abs(machine_stats.first_retry_immutable_ratio() - 2 / 3) < 1e-9

    def test_ratio_without_observations(self):
        assert stats().first_retry_immutable_ratio() == 0.0


class TestSummary:
    def test_summary_mentions_key_numbers(self):
        machine_stats = stats()
        machine_stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")
        machine_stats.makespan_cycles = 123
        text = machine_stats.summary()
        assert "123" in text
        assert "commits=1" in text
