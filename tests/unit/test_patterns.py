"""Unit tests for the AR body patterns (via the characterization probe)."""

from repro.analysis.characterize import probe_body
from repro.memory.shared import Allocator, SharedMemory
from repro.workloads.patterns import (
    counter_increment,
    direct_multi_rmw,
    direct_swap,
    dynamic_scatter,
    indirect_rmw,
    indirect_transfer,
    list_traverse_count,
    read_mostly_scan,
)


def fresh_memory():
    return SharedMemory(), Allocator()


class TestDirectPatterns:
    def test_counter_increment_effect(self):
        memory, alloc = fresh_memory()
        addr = alloc.alloc_lines(1)
        memory.poke(addr, 10)
        result = probe_body(counter_increment(addr, delta=3), memory, commit=True)
        assert memory.peek(addr) == 13
        assert not result.indirection_seen

    def test_direct_swap_effect_and_footprint(self):
        memory, alloc = fresh_memory()
        a = alloc.alloc_lines(1)
        b = alloc.alloc_lines(1)
        memory.poke(a, 1)
        memory.poke(b, 2)
        result = probe_body(direct_swap(a, b), memory, commit=True)
        assert memory.peek(a) == 2 and memory.peek(b) == 1
        assert result.footprint_size == 2
        assert not result.indirection_seen

    def test_direct_multi_rmw(self):
        memory, alloc = fresh_memory()
        addrs = [alloc.alloc_lines(1) for _ in range(3)]
        probe_body(direct_multi_rmw(addrs, delta=2), memory, commit=True)
        assert all(memory.peek(addr) == 2 for addr in addrs)


class TestIndirectPatterns:
    def test_indirect_transfer_conserves_and_taints(self):
        memory, alloc = fresh_memory()
        table = alloc.alloc(2, align_line=True)
        wallet_a = alloc.alloc_lines(1)
        wallet_b = alloc.alloc_lines(1)
        memory.poke(table, wallet_a)
        memory.poke(table + 1, wallet_b)
        memory.poke(wallet_a, 100)
        memory.poke(wallet_b, 100)
        result = probe_body(
            indirect_transfer(table, table + 1, 30), memory, commit=True
        )
        assert memory.peek(wallet_a) == 70
        assert memory.peek(wallet_b) == 130
        assert result.indirection_seen  # Listing 2 classification

    def test_indirect_rmw_taints(self):
        memory, alloc = fresh_memory()
        index_addr = alloc.alloc_lines(1)
        base = alloc.alloc_lines(4)
        memory.poke(index_addr, 2)
        result = probe_body(indirect_rmw(index_addr, base), memory, commit=True)
        assert result.indirection_seen
        assert memory.peek(base + 2 * 8) == 1


class TestTraversalPatterns:
    def _build_list(self, memory, alloc, values):
        previous = 0
        for value in reversed(values):
            node = alloc.alloc_lines(1)
            memory.poke(node + 0, value)
            memory.poke(node + 1, previous)
            previous = node
        head = alloc.alloc_lines(1)
        memory.poke(head, previous)
        return head

    def test_traverse_counts_matches(self):
        memory, alloc = fresh_memory()
        head = self._build_list(memory, alloc, [1, 2, 2, 3])
        count_addr = alloc.alloc_lines(1)
        probe_body(
            list_traverse_count(head, 2, count_addr=count_addr),
            memory,
            commit=True,
        )
        assert memory.peek(count_addr) == 2

    def test_traverse_is_tainted(self):
        memory, alloc = fresh_memory()
        head = self._build_list(memory, alloc, [1])
        result = probe_body(list_traverse_count(head, 1), memory)
        assert result.indirection_seen

    def test_traverse_footprint_tracks_length(self):
        memory, alloc = fresh_memory()
        short_head = self._build_list(memory, alloc, [1])
        long_head = self._build_list(memory, alloc, list(range(6)))
        short = probe_body(list_traverse_count(short_head, 9), memory)
        long = probe_body(list_traverse_count(long_head, 9), memory)
        assert long.footprint_size > short.footprint_size

    def test_traverse_bounded_on_cycle(self):
        memory, alloc = fresh_memory()
        node = alloc.alloc_lines(1)
        memory.poke(node + 0, 1)
        memory.poke(node + 1, node)  # self-loop
        head = alloc.alloc_lines(1)
        memory.poke(head, node)
        result = probe_body(
            list_traverse_count(head, 1, max_steps=10), memory
        )
        assert result.loads <= 2 * 10 + 2


class TestDynamicScatter:
    def test_footprint_moves_with_cursor(self):
        memory, alloc = fresh_memory()
        cursor = alloc.alloc_lines(1)
        pool = alloc.alloc_lines(32)
        body = dynamic_scatter(cursor, pool, 32, count=4)
        first = probe_body(body, memory, commit=True)   # advances cursor
        second = probe_body(body, memory, commit=True)
        assert first.footprint != second.footprint
        assert first.indirection_seen

    def test_touch_count(self):
        memory, alloc = fresh_memory()
        cursor = alloc.alloc_lines(1)
        pool = alloc.alloc_lines(32)
        result = probe_body(dynamic_scatter(cursor, pool, 32, count=5), memory)
        # 5 pool lines + the cursor line.
        assert result.footprint_size == 6


class TestScan:
    def test_scan_reads_everything_writes_one(self):
        memory, alloc = fresh_memory()
        addrs = [alloc.alloc_lines(1) for _ in range(5)]
        write_addr = alloc.alloc_lines(1)
        result = probe_body(
            read_mostly_scan(addrs, write_addr=write_addr), memory, commit=True
        )
        assert result.loads == 6  # 5 scans + RMW load
        assert result.stores == 1
        assert memory.peek(write_addr) == 1
