"""Fault tolerance of the experiment engine.

Covers the DiskCache corruption quartet, KeyboardInterrupt persistence,
per-cell timeouts with quarantine, worker-crash recovery, and the
partial-matrix sweep report.

The hang/crash tests monkeypatch :func:`repro.sim.engine.execute_spec`
with module-level stand-ins from this file; worker processes see them
because ``ProcessPoolExecutor`` forks on Linux (the tests skip under
any other start method).
"""

import builtins
import json
import multiprocessing
import os
import time

import pytest

from repro.common.errors import ExperimentCellError
from repro.sim import engine as engine_module
from repro.sim.config import SimConfig
from repro.sim.engine import (
    SCHEMA_VERSION,
    CellFailure,
    DiskCache,
    ExperimentEngine,
    RunSpec,
)

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched workers need the fork start method",
)

HANG_SEED = 99
CRASH_SEED = 66
ERROR_SEED = 77
CRASH_FLAG_ENV = "REPRO_TEST_CRASH_FLAG"


def tiny_spec(**overrides):
    fields = dict(
        workload="mwobject",
        config=SimConfig.for_design("baseline", num_cores=2),
        seed=1,
        ops_per_thread=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def hang_on_sentinel(spec):
    if spec.seed == HANG_SEED:
        time.sleep(120)
    return engine_module.execute_spec.__wrapped__(spec)


def crash_once_on_sentinel(spec):
    if spec.seed == CRASH_SEED:
        flag = os.environ[CRASH_FLAG_ENV]
        if not os.path.exists(flag):
            with open(flag, "w"):
                pass
            os._exit(1)  # kill the worker mid-task: BrokenProcessPool
    return engine_module.execute_spec.__wrapped__(spec)


def crash_always_on_sentinel(spec):
    if spec.seed == CRASH_SEED:
        os._exit(1)
    return engine_module.execute_spec.__wrapped__(spec)


def error_on_sentinel(spec):
    if spec.seed == ERROR_SEED:
        raise ValueError("deterministic boom")
    return engine_module.execute_spec.__wrapped__(spec)


@pytest.fixture
def patched_execute(monkeypatch):
    """Install a sentinel-aware stand-in, keeping the real one reachable."""
    real = engine_module.execute_spec

    def install(stand_in):
        stand_in.__wrapped__ = real
        monkeypatch.setattr(engine_module, "execute_spec", stand_in)

    return install


class TestDiskCacheCorruption:
    def _seeded(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = "ab" * 32
        cache.store(key, {"cycles": 7})
        return cache, key

    def test_truncated_json_reads_as_miss(self, tmp_path):
        cache, key = self._seeded(tmp_path)
        with open(cache._path(key)) as handle:
            content = handle.read()
        with open(cache._path(key), "w") as handle:
            handle.write(content[: len(content) // 2])
        assert cache.load(key) is None
        cache.store(key, {"cycles": 8})  # overwritten on the next store
        assert cache.load(key) == {"cycles": 8}

    def test_wrong_schema_version_reads_as_miss(self, tmp_path):
        cache, key = self._seeded(tmp_path)
        with open(cache._path(key), "w") as handle:
            json.dump(
                {"schema_version": SCHEMA_VERSION + 1, "result": {"cycles": 7}},
                handle,
            )
        assert cache.load(key) is None
        cache.store(key, {"cycles": 8})
        assert cache.load(key) == {"cycles": 8}

    def test_missing_result_reads_as_miss(self, tmp_path):
        cache, key = self._seeded(tmp_path)
        with open(cache._path(key), "w") as handle:
            json.dump({"schema_version": SCHEMA_VERSION}, handle)
        assert cache.load(key) is None
        cache.store(key, {"cycles": 8})
        assert cache.load(key) == {"cycles": 8}

    def test_unreadable_entry_reads_as_miss(self, tmp_path, monkeypatch):
        cache, key = self._seeded(tmp_path)
        target = cache._path(key)
        real_open = builtins.open

        def deny(path, *args, **kwargs):
            if str(path) == target:
                raise PermissionError(13, "Permission denied", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", deny)
        assert cache.load(key) is None
        monkeypatch.undo()
        cache.store(key, {"cycles": 8})
        assert cache.load(key) == {"cycles": 8}

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores file modes")
    def test_chmod_denied_entry_reads_as_miss(self, tmp_path):
        cache, key = self._seeded(tmp_path)
        os.chmod(cache._path(key), 0)
        try:
            assert cache.load(key) is None
        finally:
            os.chmod(cache._path(key), 0o644)


class TestKeyboardInterrupt:
    def test_serial_interrupt_persists_completed_cells(
        self, tmp_path, patched_execute
    ):
        real = engine_module.execute_spec
        calls = []

        def interrupt_second(spec):
            calls.append(spec.seed)
            if len(calls) == 2:
                raise KeyboardInterrupt()
            return real(spec)

        patched_execute(interrupt_second)
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        specs = [tiny_spec(seed=1), tiny_spec(seed=2), tiny_spec(seed=3)]
        with pytest.raises(KeyboardInterrupt):
            engine.run_specs(specs)
        # Cell 1 finished before the interrupt and must be resumable.
        assert engine.cache.load(specs[0].cache_key()) is not None
        assert engine.cache.load(specs[2].cache_key()) is None

    @needs_fork
    def test_parallel_interrupt_persists_harvested_cells(self, tmp_path):
        engine = ExperimentEngine(jobs=2, cache_dir=str(tmp_path))
        interrupted = []

        def interrupting_progress(event):
            interrupted.append(event)
            raise KeyboardInterrupt()

        engine.progress = interrupting_progress
        specs = [tiny_spec(seed=seed) for seed in (1, 2, 3, 4)]
        with pytest.raises(KeyboardInterrupt):
            engine.run_specs(specs)
        # The cell whose completion triggered the interrupt was stored
        # before its progress event fired.
        stored = [
            spec for spec in specs
            if engine.cache.load(spec.cache_key()) is not None
        ]
        assert stored  # at least the harvested cell survived
        assert len(stored) < len(specs)  # ... and the sweep really stopped


@needs_fork
class TestHungCells:
    def test_hung_cell_quarantined_and_matrix_partial(
        self, tmp_path, patched_execute
    ):
        patched_execute(hang_on_sentinel)
        engine = ExperimentEngine(
            jobs=2, cache_dir=str(tmp_path), cell_timeout=1.0,
            max_cell_retries=1, retry_backoff_seconds=0.01,
        )
        specs = [tiny_spec(seed=1), tiny_spec(seed=HANG_SEED), tiny_spec(seed=2)]
        report = engine.run_specs_report(specs)
        assert not report.ok
        assert [failure.kind for failure in report.failures] == ["timeout"]
        failure = report.failures[0]
        assert failure.spec.seed == HANG_SEED
        assert failure.attempts == 2  # first try + one retry
        # The innocent cells completed and are cached.
        assert report.results[0] is not None
        assert report.results[1] is None
        assert report.results[2] is not None
        assert report.completed == 2
        digest = report.failure_report()
        assert digest["failed"] == 1
        assert digest["failures"][0]["kind"] == "timeout"

    def test_strict_mode_raises_experiment_cell_error(
        self, tmp_path, patched_execute
    ):
        patched_execute(hang_on_sentinel)
        engine = ExperimentEngine(
            jobs=2, cache_dir=None, cell_timeout=1.0,
            max_cell_retries=0, retry_backoff_seconds=0.01,
        )
        with pytest.raises(ExperimentCellError) as excinfo:
            engine.run_specs([tiny_spec(seed=HANG_SEED)])
        assert isinstance(excinfo.value.failure, CellFailure)
        assert excinfo.value.failure.kind == "timeout"


@needs_fork
class TestWorkerCrashes:
    def test_broken_pool_recovers_and_completes(
        self, tmp_path, patched_execute, monkeypatch
    ):
        flag = str(tmp_path / "crashed.flag")
        monkeypatch.setenv(CRASH_FLAG_ENV, flag)
        patched_execute(crash_once_on_sentinel)
        engine = ExperimentEngine(
            jobs=2, cache_dir=None, max_cell_retries=2,
            retry_backoff_seconds=0.01,
        )
        specs = [tiny_spec(seed=1), tiny_spec(seed=CRASH_SEED), tiny_spec(seed=2)]
        results = engine.run_specs(specs)  # crash absorbed: no raise
        assert all(result is not None for result in results)
        assert os.path.exists(flag)  # the crash really happened

    def test_persistent_crasher_quarantined(self, patched_execute):
        patched_execute(crash_always_on_sentinel)
        engine = ExperimentEngine(
            jobs=2, cache_dir=None, max_cell_retries=1,
            retry_backoff_seconds=0.01,
        )
        specs = [tiny_spec(seed=1), tiny_spec(seed=CRASH_SEED)]
        report = engine.run_specs_report(specs)
        assert report.results[0] is not None
        assert report.results[1] is None
        assert report.failures[0].kind == "worker-crash"


class TestDeterministicErrors:
    def test_serial_error_quarantined_with_original_exception(
        self, patched_execute
    ):
        patched_execute(error_on_sentinel)
        engine = ExperimentEngine(jobs=1, cache_dir=None)
        report = engine.run_specs_report(
            [tiny_spec(seed=1), tiny_spec(seed=ERROR_SEED)]
        )
        assert report.results[0] is not None
        assert report.results[1] is None
        failure = report.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 1  # deterministic: no retry
        assert isinstance(failure.exception, ValueError)

    def test_serial_strict_mode_reraises_original(self, patched_execute):
        patched_execute(error_on_sentinel)
        engine = ExperimentEngine(jobs=1, cache_dir=None)
        with pytest.raises(ValueError, match="deterministic boom"):
            engine.run_specs([tiny_spec(seed=ERROR_SEED)])

    @needs_fork
    def test_parallel_error_quarantined_immediately(self, patched_execute):
        patched_execute(error_on_sentinel)
        engine = ExperimentEngine(jobs=2, cache_dir=None)
        report = engine.run_specs_report(
            [tiny_spec(seed=1), tiny_spec(seed=ERROR_SEED), tiny_spec(seed=2)]
        )
        assert report.completed == 2
        assert report.failures[0].kind == "error"
        assert report.failures[0].attempts == 1


class TestSweepReport:
    def test_clean_sweep_reports_ok(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        specs = [tiny_spec(seed=seed) for seed in (1, 2)]
        report = engine.run_specs_report(specs)
        assert report.ok
        assert report.total == 2
        assert report.completed == 2
        assert all(result is not None for result in report.results)

    def test_cache_hits_counted(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        spec = tiny_spec()
        engine.run_specs_report([spec])
        report = ExperimentEngine(
            jobs=1, cache_dir=str(tmp_path)
        ).run_specs_report([spec])
        assert report.cache_hits == 1

    def test_engine_validates_new_knobs(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=1, cache_dir=None, cell_timeout=0)
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=1, cache_dir=None, max_cell_retries=-1)
