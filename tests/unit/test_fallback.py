"""Unit tests for the global fallback lock."""

import pytest

from repro.common.errors import ProtocolError
from repro.htm.fallback import FallbackLock


class TestWriter:
    def test_acquire_free_lock(self):
        lock = FallbackLock(line=5)
        assert lock.try_acquire_write(0)
        assert lock.writer == 0
        assert lock.is_write_held()

    def test_second_writer_rejected(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        assert not lock.try_acquire_write(1)

    def test_writer_blocked_by_readers(self):
        lock = FallbackLock(5)
        lock.try_acquire_read(1)
        assert not lock.try_acquire_write(0)

    def test_release_write(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        lock.release_write(0)
        assert not lock.is_write_held()
        assert lock.try_acquire_write(1)

    def test_release_foreign_write_raises(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        with pytest.raises(ProtocolError):
            lock.release_write(1)

    def test_acquisition_counter(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        lock.release_write(0)
        lock.try_acquire_write(1)
        assert lock.writer_acquisitions == 2


class TestReaders:
    def test_multiple_readers_allowed(self):
        lock = FallbackLock(5)
        assert lock.try_acquire_read(0)
        assert lock.try_acquire_read(1)
        assert lock.readers == {0, 1}

    def test_reader_blocked_by_writer(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        assert not lock.try_acquire_read(1)

    def test_release_read(self):
        lock = FallbackLock(5)
        lock.try_acquire_read(0)
        lock.release_read(0)
        assert lock.readers == frozenset()
        assert lock.try_acquire_write(1)

    def test_release_unheld_read_raises(self):
        with pytest.raises(ProtocolError):
            FallbackLock(5).release_read(0)


class TestForceRelease:
    def test_force_release_write(self):
        lock = FallbackLock(5)
        lock.try_acquire_write(0)
        lock.force_release_any(0)
        assert not lock.is_write_held()

    def test_force_release_read(self):
        lock = FallbackLock(5)
        lock.try_acquire_read(0)
        lock.force_release_any(0)
        assert lock.readers == frozenset()

    def test_force_release_nothing_held_ok(self):
        FallbackLock(5).force_release_any(3)

    def test_line_exposed(self):
        assert FallbackLock(42).line == 42
