"""Unit tests for the engine chaos harness (repro.sim.enginefaults)."""

import os

import pytest

from repro.sim.enginefaults import (
    EngineFaultPlan,
    FaultyIO,
    _roll,
    should_kill,
)


class TestRoll:
    def test_deterministic(self):
        assert _roll(1, "kill", "cell-a", 0) == _roll(1, "kill", "cell-a", 0)

    def test_in_unit_interval(self):
        for occurrence in range(20):
            draw = _roll(3, "corrupt", "x.json", occurrence)
            assert 0.0 <= draw < 1.0

    @pytest.mark.parametrize(
        "a,b",
        [
            ((1, "kill", "c", 0), (2, "kill", "c", 0)),
            ((1, "kill", "c", 0), (1, "torn", "c", 0)),
            ((1, "kill", "c", 0), (1, "kill", "d", 0)),
            ((1, "kill", "c", 0), (1, "kill", "c", 1)),
        ],
    )
    def test_every_component_matters(self, a, b):
        assert _roll(*a) != _roll(*b)


class TestEngineFaultPlan:
    def test_defaults_inject_nothing(self):
        plan = EngineFaultPlan()
        assert plan.worker_kill_rate == 0.0
        assert plan.corrupt_rate == 0.0

    @pytest.mark.parametrize("field", [
        "worker_kill_rate", "corrupt_rate", "torn_write_rate", "enospc_rate",
    ])
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_validated(self, field, rate):
        with pytest.raises(ValueError):
            EngineFaultPlan(**{field: rate})

    def test_hashable_and_picklable(self):
        import pickle

        plan = EngineFaultPlan(seed=3, corrupt_rate=0.5)
        assert hash(plan) == hash(EngineFaultPlan(seed=3, corrupt_rate=0.5))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_roll_uses_plan_seed(self):
        assert (EngineFaultPlan(seed=1).roll("kill", "c")
                != EngineFaultPlan(seed=2).roll("kill", "c"))


class TestFaultyIO:
    def test_rate_zero_is_clean_passthrough(self, tmp_path):
        io = FaultyIO(EngineFaultPlan(seed=1))
        target = str(tmp_path / "entry.json")
        io.write_atomic(target, b'{"ok": 1}')
        io.append_line(str(tmp_path / "log.jsonl"), '{"rec": 1}')
        assert open(target, "rb").read() == b'{"ok": 1}'
        assert (open(str(tmp_path / "log.jsonl"), "rb").read()
                == b'{"rec": 1}\n')
        assert io.injected == {"corrupt": 0, "torn": 0, "enospc": 0}

    def test_corrupt_rate_one_garbles_every_write(self, tmp_path):
        io = FaultyIO(EngineFaultPlan(seed=1, corrupt_rate=1.0))
        target = str(tmp_path / "entry.json")
        io.write_atomic(target, b'{"ok": 1}')
        assert open(target, "rb").read().startswith(b"\x00CHAOS")
        assert io.injected["corrupt"] == 1

    def test_torn_rate_one_tears_every_append(self, tmp_path):
        io = FaultyIO(EngineFaultPlan(seed=1, torn_write_rate=1.0))
        target = str(tmp_path / "log.jsonl")
        io.append_line(target, '{"rec": 1}')
        data = open(target, "rb").read()
        full = b'{"rec": 1}\n'
        assert data == full[: len(full) // 2]  # strict prefix, no newline
        assert io.injected["torn"] == 1

    def test_enospc_rate_one_raises(self, tmp_path):
        import errno

        io = FaultyIO(EngineFaultPlan(seed=1, enospc_rate=1.0))
        with pytest.raises(OSError) as excinfo:
            io.write_atomic(str(tmp_path / "entry.json"), b"data")
        assert excinfo.value.errno == errno.ENOSPC
        with pytest.raises(OSError):
            io.append_line(str(tmp_path / "log.jsonl"), "rec")
        assert io.injected["enospc"] == 2

    def test_retries_get_fresh_draws(self, tmp_path):
        # With a sub-1 rate, repeating the same operation must not repeat
        # the same decision forever — that is what guarantees chaos runs
        # converge. Find a seed where the first write is corrupted, then
        # check a later retry of the same path comes through clean.
        target = str(tmp_path / "entry.json")
        for seed in range(100):
            io = FaultyIO(EngineFaultPlan(seed=seed, corrupt_rate=0.5))
            io.write_atomic(target, b'{"ok": 1}')
            if io.injected["corrupt"] == 0:
                continue
            for _ in range(40):
                io.write_atomic(target, b'{"ok": 1}')
                if open(target, "rb").read() == b'{"ok": 1}':
                    return
            pytest.fail("40 retries never drew a clean write at rate 0.5")
        pytest.fail("no seed in 0..99 corrupted the first write at rate 0.5")

    def test_two_instances_same_plan_inject_identically(self, tmp_path):
        plan = EngineFaultPlan(seed=9, corrupt_rate=0.5, torn_write_rate=0.5)
        outputs = []
        for run in ("a", "b"):
            root = tmp_path / run
            root.mkdir()
            io = FaultyIO(plan)
            for i in range(10):
                io.write_atomic(str(root / "e.json"), b"payload-%d" % i)
                io.append_line(str(root / "log.jsonl"), "rec-%d" % i)
            outputs.append((
                open(str(root / "e.json"), "rb").read(),
                open(str(root / "log.jsonl"), "rb").read(),
                dict(io.injected),
            ))
        assert outputs[0] == outputs[1]


class TestShouldKill:
    def test_rate_zero_never_kills(self, tmp_path):
        marker_dir = str(tmp_path / "kills")
        assert not should_kill("cell", rate=0.0, seed=1,
                               marker_dir=marker_dir)
        assert not os.path.exists(marker_dir)

    def test_rate_one_kills_exactly_once(self, tmp_path):
        marker_dir = str(tmp_path / "kills")
        assert should_kill("cell", rate=1.0, seed=1, marker_dir=marker_dir)
        # Marker claimed: every later call (any process) declines.
        for _ in range(3):
            assert not should_kill("cell", rate=1.0, seed=1,
                                   marker_dir=marker_dir)
        assert os.path.exists(os.path.join(marker_dir, "cell"))

    def test_cells_claim_independent_markers(self, tmp_path):
        marker_dir = str(tmp_path / "kills")
        assert should_kill("cell-a", rate=1.0, seed=1, marker_dir=marker_dir)
        assert should_kill("cell-b", rate=1.0, seed=1, marker_dir=marker_dir)

    def test_selection_is_seeded(self, tmp_path):
        marker_dir = str(tmp_path / "kills")
        decisions = {
            seed: should_kill("cell", rate=0.5, seed=seed,
                              marker_dir=os.path.join(marker_dir, str(seed)))
            for seed in range(30)
        }
        assert True in decisions.values()
        assert False in decisions.values()
