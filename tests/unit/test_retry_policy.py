"""Unit tests for the unified retry policy (repro.common.retry)."""

import pytest

from repro.common.retry import RetryPolicy


def no_jitter(**overrides):
    fields = dict(base_seconds=1.0, multiplier=2.0, max_seconds=8.0,
                  jitter=0.0)
    fields.update(overrides)
    return RetryPolicy(**fields)


class TestDelay:
    def test_exponential_progression(self):
        policy = no_jitter()
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_capped_at_max_seconds(self):
        policy = no_jitter()
        assert policy.delay(10) == 8.0

    def test_zero_base_means_no_delay(self):
        policy = no_jitter(base_seconds=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(5) == 0.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            no_jitter().delay(0)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_seconds=1.0, multiplier=1.0,
                             max_seconds=1.0, jitter=0.25)
        for attempt in range(1, 50):
            assert 0.75 <= policy.delay(attempt) <= 1.25

    def test_jitter_deterministic_per_seed(self):
        a = RetryPolicy(jitter=0.25, seed=7)
        b = RetryPolicy(jitter=0.25, seed=7)
        c = RetryPolicy(jitter=0.25, seed=8)
        delays_a = [a.delay(n) for n in range(1, 6)]
        assert delays_a == [b.delay(n) for n in range(1, 6)]
        assert delays_a != [c.delay(n) for n in range(1, 6)]

    def test_jitter_varies_across_attempts(self):
        policy = RetryPolicy(base_seconds=1.0, multiplier=1.0,
                             max_seconds=1.0, jitter=0.25)
        assert len({policy.delay(n) for n in range(1, 10)}) > 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_seconds=-1),
            dict(multiplier=0.5),
            dict(max_seconds=-1),
            dict(jitter=-0.1),
            dict(jitter=1.0),
            dict(budget_seconds=0),
            dict(budget_seconds=-5),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBudget:
    def test_unbounded_never_exhausts(self):
        policy = no_jitter()
        policy.begin()
        assert policy.remaining() is None
        assert not policy.exhausted()

    def test_budget_counts_down_on_fake_clock(self):
        now = [100.0]
        policy = no_jitter(budget_seconds=10.0, clock=lambda: now[0])
        policy.begin()
        assert policy.remaining() == 10.0
        now[0] += 6.0
        assert policy.remaining() == 4.0
        assert not policy.exhausted()
        now[0] += 5.0
        assert policy.remaining() == 0.0
        assert policy.exhausted()

    def test_begin_rearms(self):
        now = [0.0]
        policy = no_jitter(budget_seconds=5.0, clock=lambda: now[0])
        policy.begin()
        now[0] += 10.0
        assert policy.exhausted()
        policy.begin()
        assert not policy.exhausted()

    def test_pause_sleeps_delay(self):
        slept = []
        policy = no_jitter(sleep=slept.append)
        policy.begin()
        assert policy.pause(2) is True
        assert slept == [2.0]

    def test_pause_clamps_to_remaining_budget(self):
        slept = []
        now = [0.0]
        policy = no_jitter(budget_seconds=1.5, sleep=slept.append,
                           clock=lambda: now[0])
        policy.begin()
        assert policy.pause(3) is True  # delay 4.0, clamped to 1.5
        assert slept == [1.5]

    def test_pause_refuses_once_exhausted(self):
        slept = []
        now = [0.0]
        policy = no_jitter(budget_seconds=1.0, sleep=slept.append,
                           clock=lambda: now[0])
        policy.begin()
        now[0] += 2.0
        assert policy.pause(1) is False
        assert slept == []

    def test_pause_skips_zero_delay_sleep(self):
        slept = []
        policy = no_jitter(base_seconds=0.0, sleep=slept.append)
        policy.begin()
        assert policy.pause(1) is True
        assert slept == []
