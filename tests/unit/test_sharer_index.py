"""Unit tests for the reverse sharer index and O(sharers) arbitration.

Two halves: the :class:`SharerIndex` container itself (incremental
registration, cleanup on drop), and exhaustive equivalence of
``ConflictArbiter.resolve_line`` against the legacy full-peer-scan
``resolve`` over the same machine snapshots.
"""

import itertools

from repro.htm.abort import AbortReason
from repro.htm.arbiter import ConflictArbiter, NO_CONFLICT, TxPeerView
from repro.htm.rwset import ReadWriteSets
from repro.htm.sharer_index import SharerIndex


class TestSharerIndex:
    def test_empty_lookup(self):
        index = SharerIndex()
        assert index.get(5) is None
        assert len(index) == 0

    def test_reader_and_writer_registration(self):
        index = SharerIndex()
        index.add_reader(0, 5)
        index.add_writer(1, 5)
        entry = index.get(5)
        assert entry.readers == {0}
        assert entry.writers == {1}

    def test_drop_core_removes_empty_entries(self):
        index = SharerIndex()
        index.add_reader(0, 5)
        index.add_writer(0, 6)
        index.drop_core(0, read_lines={5}, write_lines={6})
        assert index.get(5) is None
        assert index.get(6) is None
        assert len(index) == 0

    def test_drop_core_keeps_other_sharers(self):
        index = SharerIndex()
        index.add_reader(0, 5)
        index.add_reader(1, 5)
        index.drop_core(0, read_lines={5}, write_lines=set())
        assert index.get(5).readers == {1}

    def test_drop_core_line_in_both_sets(self):
        # A core that read and wrote the same line leaves no residue.
        index = SharerIndex()
        index.add_reader(0, 5)
        index.add_writer(0, 5)
        index.drop_core(0, read_lines={5}, write_lines={5})
        assert index.get(5) is None

    def test_drop_core_ignores_unregistered_lines(self):
        index = SharerIndex()
        index.add_reader(1, 5)
        index.drop_core(0, read_lines={5, 99}, write_lines={42})
        assert index.get(5).readers == {1}

    def test_snapshot_is_frozen_copy(self):
        index = SharerIndex()
        index.add_reader(0, 5)
        snap = index.snapshot()
        assert snap == {5: (frozenset({0}), frozenset())}
        index.add_writer(2, 5)
        assert snap == {5: (frozenset({0}), frozenset())}  # unchanged


def attempts_to_views_and_index(attempts):
    """Build the legacy peer-view list and the sharer index for one
    snapshot of in-flight attempts.

    ``attempts`` maps core -> (reads, writes, is_power, is_failed,
    active). Failed and inactive cores are given to the legacy scan as
    peer views (it skips them itself) but — matching the machine's
    lifecycle rules — are never registered in the index.
    """
    views = []
    index = SharerIndex()
    power_core = None
    for core, (reads, writes, is_power, is_failed, active) in attempts.items():
        sets = ReadWriteSets(l1_sets=None, l2_sets=None)
        for line in reads:
            sets.record_read(line)
        for line in writes:
            sets.record_write(line)
        views.append(TxPeerView(core, sets, is_power=is_power,
                                conflict_detection_active=active,
                                is_failed=is_failed))
        if is_power:
            power_core = core
        if active and not is_failed:
            for line in reads:
                index.add_reader(core, line)
            for line in writes:
                index.add_writer(core, line)
    return views, index, power_core


def assert_equivalent(attempts, requester, line, is_write,
                      requester_failed=False, unstoppable=False):
    views, index, power_core = attempts_to_views_and_index(attempts)
    arbiter = ConflictArbiter()
    peers = [view for view in views if view.core != requester]
    legacy = arbiter.resolve(requester, line, is_write, requester_failed,
                             peers, requester_unstoppable=unstoppable)
    fast = arbiter.resolve_line(requester, line, is_write, requester_failed,
                                index.get(line), power_core=power_core,
                                requester_unstoppable=unstoppable)
    assert sorted(fast.victims) == sorted(legacy.victims)
    assert fast.requester_abort_reason == legacy.requester_abort_reason
    assert fast.nacking_core == legacy.nacking_core


class TestResolveLineEquivalence:
    def test_untracked_line_is_shared_no_conflict(self):
        resolution = ConflictArbiter().resolve_line(0, 5, True, False, None)
        assert resolution is NO_CONFLICT
        assert resolution.requester_proceeds
        assert resolution.victims == ()

    def test_failed_requester_never_victimizes(self):
        attempts = {1: ([5], [5], False, False, True)}
        assert_equivalent(attempts, requester=0, line=5, is_write=True,
                          requester_failed=True)

    def test_write_aborts_readers_and_writers(self):
        attempts = {
            1: ([5], [], False, False, True),
            2: ([], [5], False, False, True),
            3: ([6], [], False, False, True),
        }
        assert_equivalent(attempts, requester=0, line=5, is_write=True)

    def test_read_ignores_readers_aborts_writer(self):
        attempts = {
            1: ([5], [], False, False, True),
            2: ([], [5], False, False, True),
        }
        assert_equivalent(attempts, requester=0, line=5, is_write=False)

    def test_requester_own_footprint_excluded(self):
        attempts = {0: ([5], [5], False, False, True)}
        assert_equivalent(attempts, requester=0, line=5, is_write=True)

    def test_power_peer_nacks(self):
        attempts = {
            1: ([5], [], True, False, True),
            2: ([], [5], False, False, True),
        }
        assert_equivalent(attempts, requester=0, line=5, is_write=True)

    def test_unstoppable_requester_aborts_power_peer(self):
        attempts = {1: ([], [5], True, False, True)}
        assert_equivalent(attempts, requester=0, line=5, is_write=True,
                          unstoppable=True)

    def test_non_conflicting_power_peer_does_not_nack(self):
        attempts = {
            1: ([9], [], True, False, True),
            2: ([5], [], False, False, True),
        }
        assert_equivalent(attempts, requester=0, line=5, is_write=True)

    def test_failed_and_inactive_peers_invisible(self):
        attempts = {
            1: ([5], [5], False, True, True),    # failed discovery
            2: ([5], [5], False, False, False),  # NS-CL: detection off
            3: ([5], [], False, False, True),
        }
        assert_equivalent(attempts, requester=0, line=5, is_write=True)

    def test_exhaustive_small_snapshots(self):
        # Every footprint combination of three peers around line 5,
        # crossed with request kind and power placement.
        footprints = [(), (5,), (7,), (5, 7)]
        for reads1, writes1, reads2, writes2 in itertools.product(
                footprints, repeat=4):
            for power in (None, 1, 2):
                attempts = {
                    1: (reads1, writes1, power == 1, False, True),
                    2: (reads2, writes2, power == 2, False, True),
                }
                for is_write in (False, True):
                    assert_equivalent(attempts, requester=0, line=5,
                                      is_write=is_write)
                    assert_equivalent(attempts, requester=1, line=5,
                                      is_write=is_write)
