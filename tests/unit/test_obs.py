"""Unit tests for the observability layer (repro.obs).

Covers the full event taxonomy (construction, dict round-trip,
equality), the EventTrace ring buffer, and the MetricRegistry
counters/histograms.
"""

import pytest

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.obs.events import (
    EVENT_KINDS,
    ARAbort,
    ARBegin,
    ARCommit,
    FallbackAcquire,
    FallbackRelease,
    FaultInjected,
    LockAcquire,
    LocksRelease,
    Park,
    PowerAcquire,
    PowerRelease,
    TraceEvent,
    Wakeup,
    event_from_dict,
)
from repro.obs.metrics import Histogram, MetricCounter, MetricRegistry
from repro.obs.trace import EventTrace, TraceSink

REGION = ("genome", "segment_insert", 0)

#: One representative instance of every event kind.
SAMPLE_EVENTS = [
    ARBegin(10, 0, REGION, ExecMode.SPECULATIVE, 1),
    ARCommit(42, 0, REGION, ExecMode.NS_CL, 2, 1),
    ARAbort(30, 1, REGION, ExecMode.SPECULATIVE, 1,
            AbortReason.MEMORY_CONFLICT, line=0x42, enemy=3, enemy_write=True),
    ARAbort(31, 2, REGION, None, 1, AbortReason.EXPLICIT_FALLBACK),
    LockAcquire(12, 1, 0x42),
    LocksRelease(44, 1, (0x41, 0x42)),
    FallbackAcquire(50, 2, False),
    FallbackRelease(60, 2, False),
    FallbackAcquire(51, 3, True),
    FallbackRelease(61, 3, True),
    PowerAcquire(70, 0),
    PowerRelease(80, 0),
    Park(15, 3, "line:66"),
    Park(16, 3, "fallback"),
    Wakeup(25, 3, 10),
    FaultInjected(33, 2, AbortReason.INJECTED_SPURIOUS, 1),
]


class TestEventTaxonomy:
    def test_every_kind_registered(self):
        assert set(EVENT_KINDS) == {
            "ar_begin", "ar_commit", "ar_abort", "lock_acquire",
            "locks_release", "fallback_acquire", "fallback_release",
            "power_acquire", "power_release", "park", "wakeup",
            "fault_injected",
        }

    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=lambda event: repr(event)[:40]
    )
    def test_dict_roundtrip(self, event):
        data = event.to_dict()
        assert data["kind"] == event.kind
        rebuilt = event_from_dict(data)
        assert rebuilt == event
        assert type(rebuilt) is type(event)
        # The dict form is pure JSON types (enums by value, no tuples).
        import json

        assert json.loads(json.dumps(data)) == data

    def test_sample_covers_every_kind(self):
        assert {event.kind for event in SAMPLE_EVENTS} == set(EVENT_KINDS)

    def test_equality_is_field_wise(self):
        a = LockAcquire(12, 1, 0x42)
        assert a == LockAcquire(12, 1, 0x42)
        assert a != LockAcquire(12, 1, 0x43)
        assert a != LocksRelease(12, 1, (0x42,))
        assert hash(a) == hash(LockAcquire(12, 1, 0x42))

    def test_abort_forensic_fields_default_none(self):
        event = ARAbort(5, 0, REGION, ExecMode.SPECULATIVE, 1,
                        AbortReason.CAPACITY)
        assert event.line is None
        assert event.enemy is None
        assert event.enemy_write is None

    def test_region_tuple_survives_roundtrip(self):
        event = ARBegin(1, 0, REGION, ExecMode.SPECULATIVE, 1)
        rebuilt = event_from_dict(event.to_dict())
        assert rebuilt.region == REGION
        assert isinstance(rebuilt.region, tuple)

    def test_lines_tuple_survives_roundtrip(self):
        event = LocksRelease(1, 0, (7, 9))
        rebuilt = event_from_dict(event.to_dict())
        assert rebuilt.lines == (7, 9)
        assert isinstance(rebuilt.lines, tuple)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_dict({"kind": "no_such_event"})

    def test_subclass_must_declare_kind(self):
        with pytest.raises(TypeError, match="must define a kind"):
            class Nameless(TraceEvent):  # noqa: F811
                __slots__ = ()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(TypeError, match="duplicate event kind"):
            class Imposter(TraceEvent):
                __slots__ = ()
                kind = "ar_begin"


class TestEventTrace:
    def test_is_a_sink_and_always_truthy(self):
        trace = EventTrace()
        assert isinstance(trace, TraceSink)
        assert bool(trace)  # even empty: the emission guard is `if trace:`
        assert len(trace) == 0

    def test_emit_and_iterate_in_order(self):
        trace = EventTrace()
        for event in SAMPLE_EVENTS:
            trace.emit(event)
        assert list(trace) == SAMPLE_EVENTS
        assert trace.events() == SAMPLE_EVENTS
        assert trace.emitted == len(SAMPLE_EVENTS)
        assert trace.dropped == 0

    def test_ring_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for index in range(5):
            trace.emit(LockAcquire(index, 0, index))
        assert [event.cycle for event in trace] == [2, 3, 4]
        assert trace.emitted == 5
        assert trace.dropped == 2
        assert trace.emitted - trace.dropped == len(trace)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_tail(self):
        trace = EventTrace()
        for index in range(4):
            trace.emit(LockAcquire(index, 0, index))
        assert [event.cycle for event in trace.tail(2)] == [2, 3]
        assert trace.tail(0) == []
        assert len(trace.tail(99)) == 4

    def test_clear_keeps_counters(self):
        trace = EventTrace()
        trace.emit(SAMPLE_EVENTS[0])
        trace.clear()
        assert len(trace) == 0
        assert trace.emitted == 1

    def test_counts_by_kind(self):
        trace = EventTrace()
        for event in SAMPLE_EVENTS:
            trace.emit(event)
        counts = trace.counts_by_kind()
        assert counts["ar_abort"] == 2
        assert counts["park"] == 2
        assert sum(counts.values()) == len(SAMPLE_EVENTS)

    def test_dict_roundtrip(self):
        trace = EventTrace()
        for event in SAMPLE_EVENTS:
            trace.emit(event)
        rebuilt = EventTrace.from_dicts(trace.to_dicts())
        assert rebuilt.events() == trace.events()
        assert rebuilt.to_dicts() == trace.to_dicts()


class TestMetrics:
    def test_counter(self):
        counter = MetricCounter("aborts")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_histogram_buckets_are_powers_of_two(self):
        histogram = Histogram("latency")
        for value in (0, 1, 2, 3, 4, 1000):
            histogram.observe(value)
        # v lands in bucket v.bit_length(): 0->0, 1->1, 2..3->2, 4->3.
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
        assert histogram.count == 6
        assert histogram.total == 1010
        assert histogram.min == 0
        assert histogram.max == 1000
        assert histogram.mean == pytest.approx(1010 / 6)

    def test_histogram_clamps_negative(self):
        histogram = Histogram("latency")
        histogram.observe(-5)
        assert histogram.min == 0
        assert histogram.buckets == {0: 1}

    def test_empty_histogram_mean(self):
        assert Histogram("x").mean == 0.0

    def test_registry_binds_once(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("a").inc(2)
        assert registry.counter_value("a") == 2
        assert registry.counter_value("missing", default=7) == 7

    def test_registry_dict_roundtrip(self):
        registry = MetricRegistry()
        registry.counter("aborts").inc(5)
        registry.histogram("latency").observe(12)
        rebuilt = MetricRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.counter_value("aborts") == 5
        assert rebuilt.histogram("latency").count == 1

    def test_registry_listings_sorted(self):
        registry = MetricRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert [c.name for c in registry.counters()] == ["alpha", "zeta"]
