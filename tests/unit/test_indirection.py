"""Unit tests for taint-based indirection tracking."""

from repro.core.indirection import TaintedValue, taint_of, value_of


class TestBasics:
    def test_value_and_taint(self):
        value = TaintedValue(5)
        assert value.value == 5
        assert value.tainted

    def test_untainted_construction(self):
        assert not TaintedValue(5, tainted=False).tainted

    def test_value_of_plain_int(self):
        assert value_of(7) == 7

    def test_taint_of_plain_int_false(self):
        assert not taint_of(7)

    def test_int_conversion(self):
        assert int(TaintedValue(9)) == 9

    def test_index_usable(self):
        items = [10, 20, 30]
        assert items[TaintedValue(1)] == 20

    def test_bool(self):
        assert TaintedValue(1)
        assert not TaintedValue(0)


class TestPropagation:
    def test_add_propagates(self):
        result = TaintedValue(2) + 3
        assert result.value == 5
        assert result.tainted

    def test_radd_propagates(self):
        result = 3 + TaintedValue(2)
        assert result.value == 5
        assert result.tainted

    def test_untainted_operands_stay_clean(self):
        result = TaintedValue(2, tainted=False) + 3
        assert not result.tainted

    def test_either_operand_taints(self):
        clean = TaintedValue(1, tainted=False)
        dirty = TaintedValue(1, tainted=True)
        assert (clean + dirty).tainted
        assert (dirty + clean).tainted

    def test_sub_mul_floordiv_mod(self):
        value = TaintedValue(10)
        assert (value - 2).value == 8
        assert (value * 3).value == 30
        assert (value // 3).value == 3
        assert (value % 3).value == 1
        assert all(
            (value - 2).tainted for value in [TaintedValue(10)]
        )

    def test_rsub(self):
        assert (20 - TaintedValue(5)).value == 15

    def test_bitwise(self):
        value = TaintedValue(0b1100)
        assert (value & 0b1010).value == 0b1000
        assert (value | 0b0011).value == 0b1111
        assert (value ^ 0b1111).value == 0b0011
        assert (value >> 2).value == 0b11
        assert (value << 1).value == 0b11000

    def test_negation_keeps_taint(self):
        assert (-TaintedValue(3)).value == -3
        assert (-TaintedValue(3)).tainted

    def test_chains_accumulate_taint(self):
        base = TaintedValue(4, tainted=False)
        dirty = TaintedValue(1, tainted=True)
        result = (base * 8) + dirty * 0
        assert result.tainted  # taint survives multiplication by zero


class TestComparisons:
    def test_eq_against_int(self):
        assert TaintedValue(5) == 5
        assert not (TaintedValue(5) == 6)

    def test_eq_against_tainted(self):
        assert TaintedValue(5) == TaintedValue(5, tainted=False)

    def test_ordering(self):
        assert TaintedValue(3) < 4
        assert TaintedValue(3) <= 3
        assert TaintedValue(5) > 4
        assert TaintedValue(5) >= 5
        assert TaintedValue(5) != 6

    def test_hash_by_value(self):
        assert hash(TaintedValue(5)) == hash(5)
        assert TaintedValue(5) in {5}
