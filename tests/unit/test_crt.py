"""Unit tests for the Conflicting Reads Table."""

import pytest

from repro.core.crt import ConflictingReadsTable


class TestGeometry:
    def test_paper_sizing(self):
        crt = ConflictingReadsTable(64, 8)
        assert crt.num_sets == 8
        assert crt.assoc == 8

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            ConflictingReadsTable(10, 4)


class TestInsertLookup:
    def test_insert_then_contains(self):
        crt = ConflictingReadsTable(8, 2)
        crt.insert(5)
        assert 5 in crt
        assert 6 not in crt

    def test_duplicate_insert_no_growth(self):
        crt = ConflictingReadsTable(8, 2)
        crt.insert(5)
        crt.insert(5)
        assert len(crt) == 1
        assert crt.insertions == 1

    def test_lru_within_set(self):
        crt = ConflictingReadsTable(8, 2)  # 4 sets, 2 ways
        crt.insert(0)
        crt.insert(4)   # same set as 0
        assert 0 in crt  # refreshes 0; 4 becomes LRU
        crt.insert(8)   # same set: evicts 4
        assert 4 not in crt
        assert 0 in crt
        assert crt.evictions == 1

    def test_sets_are_independent(self):
        crt = ConflictingReadsTable(8, 2)
        crt.insert(0)
        crt.insert(1)
        crt.insert(2)
        crt.insert(3)
        assert len(crt) == 4

    def test_lines_lists_all(self):
        crt = ConflictingReadsTable(8, 2)
        for line in (1, 2, 3):
            crt.insert(line)
        assert sorted(crt.lines()) == [1, 2, 3]
