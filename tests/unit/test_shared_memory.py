"""Unit tests for SharedMemory and the bump allocator."""

import pytest

from repro.common.constants import WORDS_PER_LINE
from repro.memory.shared import Allocator, SharedMemory


class TestSharedMemory:
    def test_zero_initialized(self):
        memory = SharedMemory()
        assert memory.load(123) == 0

    def test_store_then_load(self):
        memory = SharedMemory()
        memory.store(5, 99)
        assert memory.load(5) == 99

    def test_counts_accesses(self):
        memory = SharedMemory()
        memory.store(1, 1)
        memory.load(1)
        memory.load(2)
        assert memory.store_count == 1
        assert memory.load_count == 2

    def test_peek_poke_do_not_count(self):
        memory = SharedMemory()
        memory.poke(9, 3)
        assert memory.peek(9) == 3
        assert memory.load_count == 0
        assert memory.store_count == 0

    def test_snapshot_is_a_copy(self):
        memory = SharedMemory()
        memory.poke(1, 10)
        snap = memory.snapshot()
        memory.poke(1, 20)
        assert snap[1] == 10


class TestAllocator:
    def test_sequential_allocations_do_not_overlap(self):
        alloc = Allocator()
        a = alloc.alloc(10)
        b = alloc.alloc(10)
        assert b >= a + 10

    def test_line_alignment(self):
        alloc = Allocator()
        alloc.alloc(3)
        addr = alloc.alloc(4, align_line=True)
        assert addr % WORDS_PER_LINE == 0

    def test_alloc_lines_aligned_and_sized(self):
        alloc = Allocator()
        addr = alloc.alloc_lines(3)
        assert addr % WORDS_PER_LINE == 0
        next_addr = alloc.alloc(1)
        assert next_addr >= addr + 3 * WORDS_PER_LINE

    def test_zero_page_reserved(self):
        alloc = Allocator()
        assert alloc.alloc(1) >= WORDS_PER_LINE

    def test_rejects_bad_sizes(self):
        alloc = Allocator()
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.alloc(-4)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            Allocator(base=0)

    def test_high_water_advances(self):
        alloc = Allocator()
        before = alloc.high_water
        alloc.alloc(16)
        assert alloc.high_water >= before + 16
