"""Unit tests for the side-effect-free body replay."""

import pytest

from repro.memory.shared import Allocator, SharedMemory
from repro.sim.program import AbortOp, Branch, Compute, Load, Store
from repro.sim.replay import replay_body


def body_swap(a, b):
    def body():
        value_a = yield Load(a)
        value_b = yield Load(b)
        yield Store(a, value_b)
        yield Store(b, value_a)

    return body


class TestReplayIsolation:
    def test_non_commit_replay_leaves_memory_untouched(self):
        memory = SharedMemory()
        memory.poke(8, 1)
        memory.poke(16, 2)
        replay_body(body_swap(8, 16), memory, commit=False)
        assert memory.peek(8) == 1
        assert memory.peek(16) == 2

    def test_commit_replay_applies_stores(self):
        memory = SharedMemory()
        memory.poke(8, 1)
        memory.poke(16, 2)
        replay_body(body_swap(8, 16), memory, commit=True)
        assert memory.peek(8) == 2
        assert memory.peek(16) == 1

    def test_replay_never_counts_architectural_accesses(self):
        memory = SharedMemory()
        replay_body(body_swap(8, 16), memory, commit=True)
        assert memory.load_count == 0
        assert memory.store_count == 0

    def test_store_to_load_forwarding_within_replay(self):
        memory = SharedMemory()

        def body():
            yield Store(8, 42)
            value = yield Load(8)
            yield Store(16, value)

        replay_body(body, memory, commit=True)
        assert memory.peek(16) == 42


class TestReplayObservations:
    def test_footprint_is_line_granular(self):
        memory = SharedMemory()
        result = replay_body(body_swap(0, 1), memory)  # same line (words 0,1)
        assert result.footprint == frozenset({0})
        result = replay_body(body_swap(0, 8), memory)  # lines 0 and 1
        assert result.footprint == frozenset({0, 1})

    def test_counts(self):
        memory = SharedMemory()
        result = replay_body(body_swap(0, 8), memory)
        assert result.loads == 2
        assert result.stores == 2
        assert result.footprint_size == 2

    def test_taint_from_loaded_address(self):
        memory = SharedMemory()
        memory.poke(0, 64)

        def body():
            pointer = yield Load(0)
            yield Load(pointer)

        assert replay_body(body, memory).indirection_seen

    def test_taint_from_branch(self):
        memory = SharedMemory()

        def body():
            value = yield Load(0)
            yield Branch(value)

        assert replay_body(body, memory).indirection_seen

    def test_compute_and_abort_ops_ignored(self):
        memory = SharedMemory()

        def body():
            yield Compute(5)
            yield AbortOp()

        result = replay_body(body, memory)
        assert result.footprint == frozenset()
        assert not result.indirection_seen

    def test_unknown_op_rejected(self):
        memory = SharedMemory()

        def body():
            yield "what"

        with pytest.raises(TypeError):
            replay_body(body, memory)
