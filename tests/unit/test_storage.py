"""Unit tests for the §5 storage-overhead accounting."""

from repro.analysis.storage import StorageOverhead, storage_overhead
from repro.sim.config import SimConfig


class TestPaperSizing:
    def test_indirection_bits(self):
        overhead = storage_overhead(SimConfig())
        assert overhead.indirection_bytes == 22.5  # 180 regs x 1 bit

    def test_ert_bytes(self):
        assert storage_overhead(SimConfig()).ert_bytes == 146.0

    def test_alt_bytes(self):
        assert storage_overhead(SimConfig()).alt_bytes == 276.0

    def test_crt_bytes(self):
        assert storage_overhead(SimConfig()).crt_bytes == 544.0

    def test_total_matches_paper(self):
        # §5: "The total storage overhead is less than 1KiB (988.5 bytes)."
        overhead = storage_overhead(SimConfig())
        assert overhead.total_bytes == 988.5
        assert overhead.total_bytes < 1024


class TestScaling:
    def test_halving_alt_halves_its_bytes(self):
        small = storage_overhead(SimConfig(alt_entries=16))
        assert small.alt_bytes == 138.0

    def test_bigger_ert_scales_linearly(self):
        big = storage_overhead(SimConfig(ert_entries=32))
        assert big.ert_bytes == 292.0

    def test_rows_sum_to_total(self):
        overhead = storage_overhead(SimConfig())
        rows = dict(overhead.rows())
        assert rows["total"] == overhead.total_bytes
        assert (
            rows["indirection bits"] + rows["ERT"] + rows["ALT"] + rows["CRT"]
            == rows["total"]
        )

    def test_register_count_parameter(self):
        overhead = storage_overhead(SimConfig(), physical_registers=256)
        assert overhead.indirection_bytes == 32.0
