"""Unit tests for the PowerTM token."""

from repro.htm.powertm import PowerToken


class TestPowerToken:
    def test_initially_free(self):
        token = PowerToken()
        assert token.holder is None
        assert not token.is_power(0)

    def test_single_holder(self):
        token = PowerToken()
        assert token.try_acquire(0)
        assert not token.try_acquire(1)
        assert token.is_power(0)
        assert not token.is_power(1)

    def test_reacquire_idempotent(self):
        token = PowerToken()
        token.try_acquire(0)
        assert token.try_acquire(0)
        assert token.grants == 1

    def test_release_frees_token(self):
        token = PowerToken()
        token.try_acquire(0)
        token.release(0)
        assert token.holder is None
        assert token.try_acquire(1)

    def test_release_by_non_holder_is_noop(self):
        token = PowerToken()
        token.try_acquire(0)
        token.release(1)
        assert token.holder == 0

    def test_grants_counted(self):
        token = PowerToken()
        token.try_acquire(0)
        token.release(0)
        token.try_acquire(2)
        assert token.grants == 2
