"""Unit tests for the energy model."""

from repro.core.modes import ExecMode
from repro.energy.model import EnergyModel
from repro.htm.abort import AbortReason
from repro.sim.stats import MachineStats


def populated_stats():
    stats = MachineStats(num_cores=2)
    stats.makespan_cycles = 1000
    stats.record_access("L1")
    stats.record_access("MEM")
    stats.record_compute(10)
    stats.record_branch()
    stats.record_begin(0)
    stats.record_commit(0, ExecMode.SPECULATIVE, 0, "r")
    stats.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
    return stats


class TestEnergyModel:
    def test_static_scales_with_time_and_cores(self):
        model = EnergyModel(static_power_per_core=0.5)
        stats = populated_stats()
        breakdown = model.evaluate(stats)
        assert breakdown.static == 0.5 * 2 * 1000

    def test_dynamic_includes_all_events(self):
        model = EnergyModel()
        breakdown = model.evaluate(populated_stats())
        expected = (
            model.access_energy["L1"]
            + model.access_energy["MEM"]
            + 10 * model.compute_op
            + model.branch_op
            + model.tx_begin
            + model.tx_commit
            + model.tx_abort
        )
        assert abs(breakdown.dynamic - expected) < 1e-9

    def test_total_is_sum(self):
        breakdown = EnergyModel().evaluate(populated_stats())
        assert breakdown.total == breakdown.static + breakdown.dynamic

    def test_memory_access_costs_more_than_l1(self):
        model = EnergyModel()
        assert model.access_energy["MEM"] > model.access_energy["L1"]

    def test_aborts_increase_energy(self):
        model = EnergyModel()
        base = populated_stats()
        more_aborts = populated_stats()
        more_aborts.record_abort(0, AbortReason.MEMORY_CONFLICT, "r")
        assert model.evaluate(more_aborts).total > model.evaluate(base).total

    def test_unknown_level_falls_back_to_l1_cost(self):
        stats = MachineStats(1)
        stats.record_access("WEIRD")
        breakdown = EnergyModel().evaluate(stats)
        assert breakdown.dynamic == EnergyModel().access_energy["L1"]
