"""Unit tests for the experiment engine's cache and spec machinery."""

import json

import pytest

from repro.sim import engine as engine_module
from repro.sim.config import SimConfig
from repro.sim.engine import (
    DiskCache,
    ExperimentEngine,
    ProgressEvent,
    RunSpec,
    execute_spec,
)


def tiny_spec(**overrides):
    fields = dict(
        workload="mwobject",
        config=SimConfig.for_design("baseline", num_cores=2),
        seed=1,
        ops_per_thread=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestRunSpec:
    def test_hashable_and_picklable(self):
        import pickle

        spec = tiny_spec()
        assert hash(spec) == hash(tiny_spec())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_cache_key_stable(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(workload="bst"),
            dict(seed=2),
            dict(ops_per_thread=4),
            dict(ops_per_thread=None),
            dict(config=SimConfig.for_design("clear", num_cores=2)),
            dict(config=SimConfig.for_design("baseline", num_cores=4)),
        ],
    )
    def test_cache_key_covers_every_input(self, overrides):
        assert tiny_spec().cache_key() != tiny_spec(**overrides).cache_key()

    def test_schema_version_bump_invalidates(self, monkeypatch):
        before = tiny_spec().cache_key()
        monkeypatch.setattr(engine_module, "SCHEMA_VERSION",
                            engine_module.SCHEMA_VERSION + 1)
        assert tiny_spec().cache_key() != before


class TestDiskCache:
    def test_miss_on_empty(self, tmp_path):
        assert DiskCache(str(tmp_path)).load("0" * 64) is None

    def test_store_then_load(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        cache.store("ab" * 32, {"cycles": 7})
        assert cache.load("ab" * 32) == {"cycles": 7}

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = "cd" * 32
        cache.store(key, {"cycles": 7})
        with open(cache._path(key), "w") as handle:
            handle.write("{not json")
        assert cache.load(key) is None

    def test_entry_without_result_reads_as_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = "ef" * 32
        cache.store(key, {"cycles": 7})
        with open(cache._path(key), "w") as handle:
            json.dump({"unrelated": True}, handle)
        assert cache.load(key) is None

    def test_fanout_layout(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = "12" * 32
        cache.store(key, {})
        assert cache._path(key).endswith("/12/" + key + ".json")


class TestEngineCaching:
    def test_miss_then_hit(self, tmp_path):
        events = []
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path),
                                  progress=events.append)
        spec = tiny_spec()
        first = engine.run_spec(spec)
        assert [event.from_cache for event in events] == [False]

        events.clear()
        second = ExperimentEngine(jobs=1, cache_dir=str(tmp_path),
                                  progress=events.append).run_spec(spec)
        assert [event.from_cache for event in events] == [True]
        assert events[0].cache_hits == 1
        assert first.to_dict() == second.to_dict()

    def test_corrupt_entry_triggers_resimulation(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        spec = tiny_spec()
        first = engine.run_spec(spec)
        with open(engine.cache._path(spec.cache_key()), "w") as handle:
            handle.write("garbage")
        events = []
        second = ExperimentEngine(jobs=1, cache_dir=str(tmp_path),
                                  progress=events.append).run_spec(spec)
        assert [event.from_cache for event in events] == [False]
        assert first.to_dict() == second.to_dict()
        # ... and the overwritten entry serves the next run.
        assert ExperimentEngine(
            jobs=1, cache_dir=str(tmp_path)
        ).cache.load(spec.cache_key()) is not None

    def test_schema_bump_invalidates_cache(self, tmp_path, monkeypatch):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        spec = tiny_spec()
        engine.run_spec(spec)
        monkeypatch.setattr(engine_module, "SCHEMA_VERSION",
                            engine_module.SCHEMA_VERSION + 1)
        events = []
        ExperimentEngine(jobs=1, cache_dir=str(tmp_path),
                         progress=events.append).run_spec(spec)
        assert [event.from_cache for event in events] == [False]

    def test_cache_disabled_by_none_dir(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=None)
        assert engine.cache is None
        engine.run_spec(tiny_spec())
        assert not list(tmp_path.iterdir())


class TestEngineExecution:
    def test_results_in_spec_order(self, tmp_path):
        specs = [tiny_spec(seed=seed) for seed in (3, 1, 2)]
        results = ExperimentEngine(jobs=1, cache_dir=None).run_specs(specs)
        assert [result.seed for result in results] == [3, 1, 2]

    def test_matches_direct_execution(self):
        spec = tiny_spec()
        engine_result = ExperimentEngine(jobs=1, cache_dir=None).run_spec(spec)
        assert engine_result.to_dict() == execute_spec(spec)

    def test_default_jobs_is_cpu_count(self):
        import os

        assert ExperimentEngine(cache_dir=None).jobs == (os.cpu_count() or 1)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0, cache_dir=None)

    def test_empty_spec_list(self):
        assert ExperimentEngine(jobs=1, cache_dir=None).run_specs([]) == []


class TestProgressEvents:
    def test_monotone_done_counts(self, tmp_path):
        events = []
        specs = [tiny_spec(seed=seed) for seed in (1, 2, 3)]
        ExperimentEngine(jobs=1, cache_dir=str(tmp_path),
                         progress=events.append).run_specs(specs)
        assert [event.done for event in events] == [1, 2, 3]
        assert all(event.total == 3 for event in events)
        assert all(not event.from_cache for event in events)

    def test_throughput_and_eta(self):
        event = ProgressEvent(done=5, total=10, cache_hits=0,
                              elapsed_seconds=2.0, spec=None,
                              from_cache=False)
        assert event.cells_per_second == 2.5
        assert event.eta_seconds == 2.0

    def test_zero_elapsed_guard(self):
        event = ProgressEvent(done=0, total=4, cache_hits=0,
                              elapsed_seconds=0.0, spec=None,
                              from_cache=False)
        assert event.cells_per_second == 0.0
        assert event.eta_seconds == 0.0
