"""Unit tests for the plain-text renderers."""

from repro.analysis.report import (
    format_ratio,
    geometric_mean,
    render_bar_chart,
    render_stacked_shares,
    render_table,
)


class TestFormatRatio:
    def test_default_digits(self):
        assert format_ratio(0.3456) == "0.35"

    def test_custom_digits(self):
        assert format_ratio(0.3456, 3) == "0.346"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]])
        assert "a" in text and "bb" in text
        assert "30" in text

    def test_title_prepended(self):
        text = render_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_columns_aligned(self):
        text = render_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3].rstrip()) or True
        assert "---" in lines[1]


class TestRenderBarChart:
    def test_bars_scale_with_value(self):
        text = render_bar_chart({"a": 1.0, "b": 0.5}, width=10)
        line_a, line_b = text.splitlines()
        assert line_a.count("#") == 10
        assert line_b.count("#") == 5

    def test_empty_series(self):
        assert render_bar_chart({}, title="t") == "t"

    def test_values_printed(self):
        assert "0.50" in render_bar_chart({"a": 0.5})


class TestRenderStacked:
    def test_shares_rendered(self):
        text = render_stacked_shares(
            [("row", {"x": 0.5, "y": 0.5})], ["x", "y"], width=10
        )
        assert "x=0.50" in text and "y=0.50" in text
        assert "#" in text and "=" in text

    def test_title(self):
        text = render_stacked_shares([], ["x"], title="Fig")
        assert text == "Fig"


class TestGeometricMean:
    def test_of_equal_values(self):
        assert abs(geometric_mean([2.0, 2.0, 2.0]) - 2.0) < 1e-9

    def test_known_value(self):
        assert abs(geometric_mean([1.0, 4.0]) - 2.0) < 1e-9

    def test_ignores_non_positive(self):
        assert abs(geometric_mean([0.0, 4.0]) - 4.0) < 1e-9

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0
