"""Source lint: no direct reads of the deprecated mode booleans.

``config.powertm`` / ``config.clear`` survive only as read-only
compatibility properties on :class:`SimConfig`; every behavioral
decision must go through the design protocol (``config.design_class``
or a hook on the machine's design instance). A fresh ``config.powertm``
read silently bypasses the registry — e.g. a custom registered design
with ``powertm = True`` would be treated as requester-wins by any code
still pattern-matching on the boolean. This grep keeps the door shut.

Same story for ``config.oracle``: since the checker-mode redesign it is
a mode *string* (``"off"``/``"shadow"``/``"online"``/``"cross-check"``),
so a truthiness read (``if config.oracle:``) is a latent bug — every
non-empty mode string, including ``"off"``, is truthy. Behavioral code
must use the ``oracle_armed``/``shadow_oracle``/``online_monitor``
properties or compare against a mode name; only the compatibility
layer in ``sim/config.py`` may treat the field loosely.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Attribute reads of the deprecated booleans on any *config*-ish
#: receiver (``config.powertm``, ``self.config.clear``, ...).
FLAG_READ = re.compile(r"\bconfig\s*\.\s*(powertm|clear)\b")

#: Truthiness reads of the oracle mode string: ``config.oracle`` used
#: directly as a condition (always true — "off" is a non-empty string)
#: rather than compared to a mode name or routed through the
#: ``oracle_armed``/``shadow_oracle``/``online_monitor`` properties.
ORACLE_TRUTHINESS = re.compile(
    r"\b(?:if|elif|while|assert|not|and|or|return)\s+"
    r"(?:self\s*\.\s*)?config\s*\.\s*oracle\b"
    r"(?!\s*(?:==|!=|\bin\b|\bis\b|\bnot\b))"
)

#: Files allowed to touch the booleans: the compatibility layer itself.
EXEMPT = {"sim/config.py"}


def flag_reads(pattern=FLAG_READ):
    hits = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in EXEMPT:
            continue
        for number, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if pattern.search(code):
                hits.append("src/repro/{}:{}: {}".format(
                    relative, number, line.strip()
                ))
    return hits


def test_no_direct_mode_boolean_reads():
    hits = flag_reads()
    assert not hits, (
        "direct config.powertm/config.clear reads found (dispatch "
        "through the design protocol instead):\n" + "\n".join(hits)
    )


def test_no_oracle_truthiness_reads():
    hits = flag_reads(ORACLE_TRUTHINESS)
    assert not hits, (
        "truthiness reads of the oracle mode string found (use "
        "config.oracle_armed / shadow_oracle / online_monitor or "
        "compare to a mode name):\n" + "\n".join(hits)
    )


def test_lint_actually_detects(tmp_path, monkeypatch):
    """The lint must not be vacuous: plant a read, see it flagged."""
    planted = tmp_path / "repro"
    (planted / "sim").mkdir(parents=True)
    (planted / "sim" / "config.py").write_text("powertm = config.powertm\n")
    (planted / "victim.py").write_text(
        "# config.clear in a comment is fine\n"
        "if config.powertm:\n"
        "    pass\n"
    )
    import sys

    lint = sys.modules[__name__]
    monkeypatch.setattr(lint, "SRC", planted)
    hits = flag_reads()
    assert len(hits) == 1
    assert "victim.py:2" in hits[0]


def test_oracle_lint_actually_detects(tmp_path, monkeypatch):
    """Same non-vacuousness check for the oracle truthiness lint."""
    planted = tmp_path / "repro"
    (planted / "sim").mkdir(parents=True)
    (planted / "sim" / "config.py").write_text("if config.oracle:\n    pass\n")
    (planted / "victim.py").write_text(
        "# if config.oracle: in a comment is fine\n"
        "armed = config.oracle == 'online'  # comparisons are fine\n"
        "mode = self.config.oracle\n"  # plain read is fine
        "if config.oracle_armed:\n    pass\n"  # property is fine
        "if not config.oracle:\n"
        "    pass\n"
    )
    import sys

    lint = sys.modules[__name__]
    monkeypatch.setattr(lint, "SRC", planted)
    hits = flag_reads(ORACLE_TRUTHINESS)
    assert len(hits) == 1
    assert "victim.py:6" in hits[0]
