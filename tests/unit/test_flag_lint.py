"""Source lint: no direct reads of the deprecated mode booleans.

``config.powertm`` / ``config.clear`` survive only as read-only
compatibility properties on :class:`SimConfig`; every behavioral
decision must go through the design protocol (``config.design_class``
or a hook on the machine's design instance). A fresh ``config.powertm``
read silently bypasses the registry — e.g. a custom registered design
with ``powertm = True`` would be treated as requester-wins by any code
still pattern-matching on the boolean. This grep keeps the door shut.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Attribute reads of the deprecated booleans on any *config*-ish
#: receiver (``config.powertm``, ``self.config.clear``, ...).
FLAG_READ = re.compile(r"\bconfig\s*\.\s*(powertm|clear)\b")

#: Files allowed to touch the booleans: the compatibility layer itself.
EXEMPT = {"sim/config.py"}


def flag_reads():
    hits = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in EXEMPT:
            continue
        for number, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if FLAG_READ.search(code):
                hits.append("src/repro/{}:{}: {}".format(
                    relative, number, line.strip()
                ))
    return hits


def test_no_direct_mode_boolean_reads():
    hits = flag_reads()
    assert not hits, (
        "direct config.powertm/config.clear reads found (dispatch "
        "through the design protocol instead):\n" + "\n".join(hits)
    )


def test_lint_actually_detects(tmp_path, monkeypatch):
    """The lint must not be vacuous: plant a read, see it flagged."""
    planted = tmp_path / "repro"
    (planted / "sim").mkdir(parents=True)
    (planted / "sim" / "config.py").write_text("powertm = config.powertm\n")
    (planted / "victim.py").write_text(
        "# config.clear in a comment is fine\n"
        "if config.powertm:\n"
        "    pass\n"
    )
    import sys

    lint = sys.modules[__name__]
    monkeypatch.setattr(lint, "SRC", planted)
    hits = flag_reads()
    assert len(hits) == 1
    assert "victim.py:2" in hits[0]
