"""Property tests: online monitor verdicts == shadow oracle verdicts.

For random workloads, designs, seeds, and core counts, running the
same cell once under ``oracle="online"`` and once under
``oracle="shadow"`` must reach the same verdict: both silent on
correct machines (with identical simulated stats), and both flagging
the same planted violations — out-of-band tampering and a
conflict-dropping arbiter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import OracleViolation
from repro.htm.arbiter import NO_CONFLICT
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

pytestmark = pytest.mark.slow

WORKLOADS = ["hashmap", "bst", "mwobject", "genome", "labyrinth"]
DESIGNS = ["baseline", "powertm", "clear", "clear+powertm", "lrw", "bigatomics"]


def run_cell(workload, design, seed, cores, mode, plant=None):
    """One monitored run; returns (verdict, stats-dict-or-None)."""
    config = SimConfig.for_design(design, num_cores=cores, oracle=mode)
    machine = Machine(
        config, make_workload(workload, ops_per_thread=4), seed=seed
    )
    if plant is not None:
        plant(machine)
    try:
        stats = machine.run()
    except OracleViolation:
        return "violation", None
    return "clean", stats.to_dict()


@given(
    workload=st.sampled_from(WORKLOADS),
    design=st.sampled_from(DESIGNS),
    seed=st.integers(min_value=1, max_value=10_000),
    cores=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=25, deadline=None)
def test_verdicts_agree_on_correct_machines(workload, design, seed, cores):
    online_verdict, online_stats = run_cell(workload, design, seed, cores,
                                            "online")
    shadow_verdict, shadow_stats = run_cell(workload, design, seed, cores,
                                            "shadow")
    assert online_verdict == shadow_verdict == "clean"
    assert online_stats == shadow_stats


@given(
    workload=st.sampled_from(WORKLOADS),
    design=st.sampled_from(DESIGNS),
    seed=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_tampering_caught_by_both(workload, design, seed):
    def tamper(machine):
        machine.memory.store(10_000_000, 42)

    for mode in ("online", "shadow"):
        verdict, _ = run_cell(workload, design, seed, 4, mode, plant=tamper)
        assert verdict == "violation", (
            "{} checker missed planted tampering on {}/{}/seed={}".format(
                mode, workload, design, seed
            )
        )


@given(seed=st.integers(min_value=1, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_broken_arbiter_verdicts_agree(seed):
    """A conflict-dropping arbiter is judged identically by both.

    Not every seed manifests the bug (a lucky interleaving can stay
    serializable), so the property is verdict *agreement*, not
    unconditional detection.
    """
    def drop_conflicts(machine):
        machine.resolve_conflict = lambda *args, **kwargs: NO_CONFLICT

    online_verdict, _ = run_cell("mwobject", "baseline", seed, 8, "online",
                                 plant=drop_conflicts)
    shadow_verdict, _ = run_cell("mwobject", "baseline", seed, 8, "shadow",
                                 plant=drop_conflicts)
    assert online_verdict == shadow_verdict
