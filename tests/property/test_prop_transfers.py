"""Property-based whole-machine test: conservation under indirections.

Random transfer workloads (bitcoin-shaped: pointer-table indirection,
so CLEAR retries them in S-CL) must conserve the total balance in every
configuration, for any seed and any table size — even with occasional
read-only audit regions mixed in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import WORDS_PER_LINE
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload

INITIAL = 1_000


class TransferWorkload(Workload):
    """Random transfers through a pointer table, plus audits."""

    name = "prop-transfers"

    def __init__(self, num_accounts, audit_share):
        super().__init__(ops_per_thread=5, think_cycles=(1, 30))
        self.num_accounts = num_accounts
        self.audit_share = audit_share
        self.table = None
        self.records = None

    def region_specs(self):
        return [
            RegionSpec("transfer", Mutability.LIKELY_IMMUTABLE),
            RegionSpec("audit", Mutability.MUTABLE),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.table = allocator.alloc(self.num_accounts, align_line=True)
        self.records = allocator.alloc_lines(self.num_accounts)
        for index in range(self.num_accounts):
            memory.poke(self.table + index, self.records + index * WORDS_PER_LINE)
            memory.poke(self.records + index * WORDS_PER_LINE, INITIAL)

    def make_invocation(self, thread_id, rng):
        if rng.random() < self.audit_share or self.num_accounts < 2:
            first = self.table

            def audit():
                account = yield Load(first)
                yield Branch(account)
                yield Load(account)

            return self.invoke("audit", audit)
        src, dst = rng.sample(range(self.num_accounts), 2)
        amount = rng.randint(1, 40)
        table = self.table

        def transfer():
            account_src = yield Load(table + src)
            account_dst = yield Load(table + dst)
            balance_src = yield Load(account_src)
            balance_dst = yield Load(account_dst)
            yield Store(account_src, balance_src - amount)
            yield Store(account_dst, balance_dst + amount)

        return self.invoke("transfer", transfer)

    def total(self, memory):
        return sum(
            memory.peek(self.records + index * WORDS_PER_LINE)
            for index in range(self.num_accounts)
        )


@given(
    letter=st.sampled_from(["B", "P", "C", "W"]),
    seed=st.integers(min_value=1, max_value=10_000),
    num_accounts=st.integers(min_value=1, max_value=8),
    audit_share=st.sampled_from([0.0, 0.3]),
    retry_threshold=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_transfers_conserve_total(letter, seed, num_accounts, audit_share,
                                  retry_threshold):
    config = SimConfig.for_design(design_name(letter), num_cores=4, retry_threshold=retry_threshold
    )
    workload = TransferWorkload(num_accounts, audit_share)
    machine = Machine(config, workload, seed=seed)
    stats = machine.run()
    assert not stats.truncated
    assert stats.total_commits == 4 * 5
    assert workload.total(machine.memory) == num_accounts * INITIAL
    assert machine.memsys.locks.locked_line_count() == 0
    from repro.sim.validate import validate_machine

    assert validate_machine(machine)
