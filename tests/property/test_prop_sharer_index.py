"""Property-based tests for the machine-global sharer index.

Model: N cores each cycling through attempt lifecycles — begin, reads,
writes, then one of zombie (pending-abort detach), abort, or commit.
After any interleaving, the incrementally maintained index must equal a
from-scratch rebuild over the attempts that are still conflict-visible,
and every live attempt's capacity counters must match a re-walk.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.rwset import CapacityExceeded, ReadWriteSets
from repro.htm.sharer_index import SharerIndex

NUM_CORES = 4

cores = st.integers(min_value=0, max_value=NUM_CORES - 1)
lines = st.integers(min_value=0, max_value=31)

# One step of the interleaving: (core, action[, line]).
steps = st.one_of(
    st.tuples(st.just("begin"), cores),
    st.tuples(st.just("read"), cores, lines),
    st.tuples(st.just("write"), cores, lines),
    st.tuples(st.just("zombie"), cores),
    st.tuples(st.just("abort"), cores),
    st.tuples(st.just("commit"), cores),
)


def rebuild(visible):
    """From-scratch index over the conflict-visible attempts."""
    expected = {}
    for core, rwsets in visible.items():
        for line in rwsets.read_set:
            expected.setdefault(line, (set(), set()))[0].add(core)
        for line in rwsets.write_set:
            expected.setdefault(line, (set(), set()))[1].add(core)
    return {
        line: (frozenset(readers), frozenset(writers))
        for line, (readers, writers) in expected.items()
    }


@given(st.lists(steps, max_size=120))
@settings(max_examples=150, deadline=None)
def test_index_equals_rebuild_after_any_interleaving(interleaving):
    index = SharerIndex()
    visible = {}   # core -> live, conflict-visible rwsets
    zombies = {}   # core -> detached-but-not-yet-aborted rwsets

    for step in interleaving:
        action, core = step[0], step[1]
        if action == "begin":
            if core in visible or core in zombies:
                continue  # already in flight
            visible[core] = ReadWriteSets(
                l1_sets=4, l1_assoc=3, l2_sets=8, l2_assoc=4,
                index=index, core=core,
            )
        elif action in ("read", "write"):
            rwsets = visible.get(core)
            if rwsets is None:
                continue
            try:
                if action == "read":
                    rwsets.record_read(step[2])
                else:
                    rwsets.record_write(step[2])
            except CapacityExceeded:
                # Capacity abort: the machine discards immediately.
                rwsets.discard()
                del visible[core]
        elif action == "zombie":
            # Remote conflict: pending_abort set, index detached now,
            # speculative state thrown away later at the abort step.
            rwsets = visible.pop(core, None)
            if rwsets is not None:
                rwsets.detach_index()
                zombies[core] = rwsets
        elif action == "abort":
            rwsets = visible.pop(core, None) or zombies.pop(core, None)
            if rwsets is not None:
                rwsets.discard()
        elif action == "commit":
            rwsets = visible.pop(core, None)
            if rwsets is not None:
                rwsets.detach_index()

        assert index.snapshot() == rebuild(visible)
        for rwsets in visible.values():
            assert rwsets.counters_consistent()

    # Drain everything; the index must come back to empty.
    for rwsets in list(visible.values()) + list(zombies.values()):
        rwsets.discard()
    assert len(index) == 0
    assert index.snapshot() == {}


@given(st.lists(st.tuples(cores, st.booleans(), lines), max_size=80))
@settings(max_examples=150, deadline=None)
def test_detach_is_idempotent_and_complete(accesses):
    index = SharerIndex()
    attempts = {
        core: ReadWriteSets(l1_sets=None, l2_sets=None, index=index, core=core)
        for core in range(NUM_CORES)
    }
    for core, is_write, line in accesses:
        if is_write:
            attempts[core].record_write(line)
        else:
            attempts[core].record_read(line)
    for core, rwsets in attempts.items():
        rwsets.detach_index()
        rwsets.detach_index()  # second detach must be a no-op
        remaining = {
            c: a for c, a in attempts.items() if c > core
        }
        assert index.snapshot() == rebuild(remaining)
    assert len(index) == 0
