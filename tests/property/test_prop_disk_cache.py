"""Property-based tests for DiskCache LRU eviction and pinning.

The invariant the engine's correctness rests on: whatever traffic a
sweep generates and however small the size bound, an entry *read or
written since the last* ``begin_sweep()`` is pinned and must never be
evicted — the sweep may trust every key it has already observed. The
size bound is best-effort below that guarantee.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import DiskCache

KEYS = ["k%02d" % i for i in range(8)]

# A sweep's cache traffic: stores, loads, and sweep boundaries.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("store"), st.sampled_from(KEYS)),
        st.tuples(st.just("load"), st.sampled_from(KEYS)),
        st.tuples(st.just("begin_sweep"), st.none()),
    ),
    max_size=60,
)


def present(cache, key):
    return os.path.exists(cache._path(key))


@given(operations, st.integers(min_value=50, max_value=600))
@settings(max_examples=60, deadline=None)
def test_entries_touched_this_sweep_never_evicted(ops, max_bytes):
    with tempfile.TemporaryDirectory() as root:
        cache = DiskCache(os.path.join(root, "cache"), max_bytes=max_bytes)
        touched = set()  # keys observed since the last begin_sweep
        for op, key in ops:
            if op == "store":
                cache.store(key, {"payload": key * 4})
                touched.add(key)
            elif op == "load":
                if cache.load(key) is not None:
                    touched.add(key)
            else:
                cache.begin_sweep()
                touched.clear()
            # The invariant, checked after every single operation.
            for pinned_key in touched:
                assert present(cache, pinned_key), (
                    "evicted {} although it was touched this sweep "
                    "(ops={}, max_bytes={})".format(pinned_key, ops, max_bytes)
                )


@given(operations, st.integers(min_value=50, max_value=600))
@settings(max_examples=60, deadline=None)
def test_touched_entries_always_reload(ops, max_bytes):
    """Stronger than file presence: the payload itself must survive."""
    with tempfile.TemporaryDirectory() as root:
        cache = DiskCache(os.path.join(root, "cache"), max_bytes=max_bytes)
        live = {}  # touched-this-sweep key -> expected payload
        for op, key in ops:
            if op == "store":
                value = {"payload": key * 4}
                cache.store(key, value)
                live[key] = value
            elif op == "load":
                value = cache.load(key)
                if key in live:
                    assert value == live[key]
                elif value is not None:
                    live[key] = value
            else:
                cache.begin_sweep()
                live.clear()
        for key, value in live.items():
            assert cache.load(key) == value


@given(operations)
@settings(max_examples=30, deadline=None)
def test_unbounded_cache_never_evicts(ops):
    with tempfile.TemporaryDirectory() as root:
        cache = DiskCache(os.path.join(root, "cache"))
        stored = set()
        for op, key in ops:
            if op == "store":
                cache.store(key, {"payload": key})
                stored.add(key)
            elif op == "load":
                cache.load(key)
            else:
                cache.begin_sweep()
        assert cache.stats.evictions == 0
        for key in stored:
            assert present(cache, key)
