"""Property-based tests for taint propagation (indirection bits)."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indirection import TaintedValue, taint_of, value_of

ints = st.integers(min_value=-(2 ** 32), max_value=2 ** 32)
safe_ops = st.sampled_from(
    [operator.add, operator.sub, operator.mul, operator.and_, operator.or_,
     operator.xor]
)


def as_operand(value, tainted):
    return TaintedValue(value, tainted)


@given(ints, ints, st.booleans(), st.booleans(), safe_ops)
@settings(max_examples=120, deadline=None)
def test_taint_is_or_of_operands(a, b, taint_a, taint_b, op):
    result = op(as_operand(a, taint_a), as_operand(b, taint_b))
    assert result.tainted == (taint_a or taint_b)
    assert result.value == op(a, b)


@given(ints, ints, st.booleans(), safe_ops)
@settings(max_examples=120, deadline=None)
def test_mixing_with_plain_int_preserves_value_semantics(a, b, tainted, op):
    result = op(as_operand(a, tainted), b)
    assert result.value == op(a, b)
    assert result.tainted == tainted


@given(ints, st.booleans())
@settings(max_examples=80, deadline=None)
def test_taint_never_lost_by_identity_chains(a, tainted):
    value = as_operand(a, tainted)
    chained = ((value + 0) * 1) - 0
    assert chained.tainted == tainted
    assert chained.value == a


@given(ints, ints)
@settings(max_examples=80, deadline=None)
def test_comparisons_agree_with_ints(a, b):
    ta, tb = TaintedValue(a), TaintedValue(b)
    assert (ta == tb) == (a == b)
    assert (ta < tb) == (a < b)
    assert (ta >= tb) == (a >= b)


@given(ints, st.booleans())
@settings(max_examples=80, deadline=None)
def test_value_of_and_taint_of_roundtrip(a, tainted):
    wrapped = TaintedValue(a, tainted)
    assert value_of(wrapped) == a
    assert taint_of(wrapped) == tainted
    assert value_of(a) == a
    assert not taint_of(a)
