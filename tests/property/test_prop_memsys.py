"""Property-based tests for the assembled memory system.

Random access/lock/unlock traffic must keep the cross-structure
invariants (lock table <-> pins <-> directory ownership, L1/L2
inclusion) intact at every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.locking import LockDenied
from repro.memory.system import MemorySystem


def small_memsys():
    return MemorySystem(
        num_cores=3,
        l1_size=4 * 64 * 2, l1_assoc=2,
        l2_size=16 * 64 * 4, l2_assoc=4,
        l3_size=64 * 64 * 8, l3_assoc=8,
        directory_sets=16,
    )


def check_consistency(memsys):
    for core in range(memsys.num_cores):
        l2_lines = set(memsys.l2[core].resident_lines())
        for line in memsys.l1[core].resident_lines():
            assert line in l2_lines, "L1 line outside inclusive L2"
        for line in memsys.locks.held_lines(core):
            assert memsys.l1[core].is_pinned(line)
            assert memsys.directory.is_owner(core, line)
    # Every line has at most one exclusive owner.
    owners = {}
    for core in range(memsys.num_cores):
        for line in memsys.l1[core].resident_lines():
            if memsys.directory.is_owner(core, line):
                assert owners.setdefault(line, core) == core


cores = st.integers(min_value=0, max_value=2)
lines = st.integers(min_value=0, max_value=31)
events = st.lists(
    st.tuples(st.sampled_from(["read", "write", "lock", "unlock_all"]),
              cores, lines),
    max_size=80,
)


@given(events)
@settings(max_examples=80, deadline=None)
def test_random_traffic_keeps_invariants(sequence):
    memsys = small_memsys()
    for kind, core, line in sequence:
        try:
            if kind == "read":
                if memsys.locks.holder(line) in (None, core):
                    memsys.access(core, line, is_write=False)
            elif kind == "write":
                if memsys.locks.holder(line) in (None, core):
                    memsys.access(core, line, is_write=True)
            elif kind == "lock":
                memsys.acquire_line_lock(core, line)
            else:
                memsys.release_all_locks(core)
        except (LockDenied, OverflowError):
            pass
        check_consistency(memsys)


@given(events)
@settings(max_examples=60, deadline=None)
def test_release_all_always_leaves_clean_lock_state(sequence):
    memsys = small_memsys()
    for kind, core, line in sequence:
        try:
            if kind == "lock":
                memsys.acquire_line_lock(core, line)
            elif kind in ("read", "write"):
                if memsys.locks.holder(line) in (None, core):
                    memsys.access(core, line, is_write=(kind == "write"))
            else:
                memsys.release_all_locks(core)
        except (LockDenied, OverflowError):
            pass
    for core in range(3):
        memsys.release_all_locks(core)
    assert memsys.locks.locked_line_count() == 0
    for core in range(3):
        for line in memsys.l1[core].resident_lines():
            assert not memsys.l1[core].is_pinned(line)


@given(st.lists(st.tuples(cores, lines), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_write_ownership_is_exclusive(writes):
    memsys = small_memsys()
    for core, line in writes:
        memsys.access(core, line, is_write=True)
        holders = memsys.directory.holders(line)
        assert holders == {core}
