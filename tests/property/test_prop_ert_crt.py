"""Property-based tests for the ERT and CRT tables."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crt import ConflictingReadsTable
from repro.core.ert import SQ_FULL_COUNTER_MAX, ExploredRegionTable

region_ids = st.integers(min_value=0, max_value=40)
lines = st.integers(min_value=0, max_value=255)


@given(st.lists(region_ids, max_size=120))
@settings(max_examples=80, deadline=None)
def test_ert_never_exceeds_capacity(sequence):
    table = ExploredRegionTable(16)
    for region in sequence:
        table.ensure(region)
        assert len(table) <= 16


@given(st.lists(region_ids, max_size=120))
@settings(max_examples=80, deadline=None)
def test_ert_most_recent_always_present(sequence):
    table = ExploredRegionTable(4)
    for region in sequence:
        table.ensure(region)
        assert region in table


@given(st.lists(st.tuples(region_ids, st.booleans()), max_size=120))
@settings(max_examples=80, deadline=None)
def test_ert_counter_always_in_two_bit_range(sequence):
    table = ExploredRegionTable(8)
    for region, overflow in sequence:
        entry = table.ensure(region)
        if overflow:
            entry.note_sq_overflow()
        else:
            entry.note_commit()
        assert 0 <= entry.sq_full_counter <= SQ_FULL_COUNTER_MAX


@given(st.lists(lines, max_size=200))
@settings(max_examples=80, deadline=None)
def test_crt_never_exceeds_geometry(sequence):
    crt = ConflictingReadsTable(16, 4)
    for line in sequence:
        crt.insert(line)
        assert len(crt) <= 16
        per_set = {}
        for tracked in crt.lines():
            per_set[tracked % crt.num_sets] = per_set.get(tracked % crt.num_sets, 0) + 1
        assert all(count <= crt.assoc for count in per_set.values())


@given(st.lists(lines, max_size=200))
@settings(max_examples=80, deadline=None)
def test_crt_most_recent_insert_present(sequence):
    crt = ConflictingReadsTable(16, 4)
    for line in sequence:
        crt.insert(line)
        assert line in crt


@given(st.lists(lines, max_size=200))
@settings(max_examples=80, deadline=None)
def test_crt_no_duplicates(sequence):
    crt = ConflictingReadsTable(16, 4)
    for line in sequence:
        crt.insert(line)
    tracked = crt.lines()
    assert len(tracked) == len(set(tracked))
