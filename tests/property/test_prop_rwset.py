"""Property-based tests for read/write sets and the store buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.rwset import CapacityExceeded, ReadWriteSets
from repro.memory.shared import SharedMemory

addrs = st.integers(min_value=0, max_value=255)
values = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(st.tuples(addrs, values), max_size=80))
@settings(max_examples=100, deadline=None)
def test_commit_equals_sequential_store_order(stores):
    sets = ReadWriteSets(l1_sets=None, l2_sets=None)
    reference = SharedMemory()
    memory = SharedMemory()
    for addr, value in stores:
        sets.buffer_store(addr, value)
        reference.store(addr, value)
    sets.drain_to(memory)
    assert memory.snapshot() == reference.snapshot()


@given(st.lists(st.tuples(addrs, values), max_size=80), addrs)
@settings(max_examples=100, deadline=None)
def test_forwarding_returns_last_buffered_value(stores, probe):
    sets = ReadWriteSets(l1_sets=None, l2_sets=None)
    last = None
    for addr, value in stores:
        sets.buffer_store(addr, value)
        if addr == probe:
            last = value
    assert sets.forwarded_load(probe) == last


@given(st.lists(st.tuples(st.booleans(), addrs), max_size=100))
@settings(max_examples=100, deadline=None)
def test_conflict_queries_match_set_membership(accesses):
    sets = ReadWriteSets(l1_sets=None, l2_sets=None)
    for is_write, line in accesses:
        if is_write:
            sets.record_write(line)
        else:
            sets.record_read(line)
    for line in range(0, 256, 17):
        assert sets.conflicts_with_write(line) == (
            line in sets.read_set or line in sets.write_set
        )
        assert sets.conflicts_with_read(line) == (line in sets.write_set)


@given(st.lists(addrs, min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_capacity_never_silently_exceeded(lines_to_write):
    sets = ReadWriteSets(l1_sets=4, l1_assoc=2, l2_sets=None, l2_assoc=None)
    try:
        for line in lines_to_write:
            sets.record_write(line)
    except CapacityExceeded:
        pass
    per_set = {}
    for line in sets.write_set:
        per_set[line % 4] = per_set.get(line % 4, 0) + 1
    # At most one set may be one over (the overflowing insert is recorded
    # before the check fires and the transaction aborts).
    overfull = [count for count in per_set.values() if count > 2]
    assert len(overfull) <= 1
    assert all(count <= 3 for count in per_set.values())


@given(st.lists(st.tuples(addrs, values), max_size=50))
@settings(max_examples=100, deadline=None)
def test_discard_leaves_memory_untouched(stores):
    sets = ReadWriteSets(l1_sets=None, l2_sets=None)
    memory = SharedMemory()
    for addr, value in stores:
        sets.buffer_store(addr, value)
    sets.discard()
    sets.drain_to(memory)
    assert memory.snapshot() == {}
