"""Property-based tests for the lock manager."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.locking import LockDenied, LockManager

cores = st.integers(min_value=0, max_value=3)
lines = st.integers(min_value=0, max_value=15)
events = st.lists(
    st.tuples(st.sampled_from(["lock", "unlock_all"]), cores, lines), max_size=100
)


@given(events)
@settings(max_examples=100, deadline=None)
def test_lock_table_bidirectional_consistency(sequence):
    locks = LockManager()
    for kind, core, line in sequence:
        if kind == "lock":
            try:
                locks.try_lock(core, line)
            except LockDenied:
                pass
        else:
            locks.unlock_all(core)
        # Invariant: holder maps and per-core maps agree exactly.
        forward = {}
        for owner in range(4):
            for held in locks.held_lines(owner):
                forward[held] = owner
        backward = {
            line_id: locks.holder(line_id)
            for line_id in range(16)
            if locks.holder(line_id) is not None
        }
        assert forward == backward
        assert locks.locked_line_count() == len(backward)


@given(events)
@settings(max_examples=100, deadline=None)
def test_at_most_one_holder_per_line(sequence):
    locks = LockManager()
    for kind, core, line in sequence:
        if kind == "lock":
            try:
                locks.try_lock(core, line)
            except LockDenied:
                pass
        else:
            locks.unlock_all(core)
        holders = [
            owner
            for owner in range(4)
            for held in [locks.held_lines(owner)]
            if line in held
        ]
        assert len(holders) <= 1


@given(st.lists(st.tuples(cores, lines), max_size=60))
@settings(max_examples=100, deadline=None)
def test_unlock_all_leaves_no_residue(sequence):
    locks = LockManager()
    for core, line in sequence:
        try:
            locks.try_lock(core, line)
        except LockDenied:
            pass
    for core in range(4):
        locks.unlock_all(core)
    assert locks.locked_line_count() == 0
