"""Property-based generator determinism: same spec + seed, same bytes.

Hypothesis drives random generator specs (footprint, mutability class,
contention, read mix, nesting) through the simulator and asserts the
promises the ``gen:`` namespace makes:

- re-running a (spec, seed) cell from a fresh workload instance yields
  byte-identical stats and final memory — the generator carries no
  hidden process state;
- the reference heap loop and the batched calendar-queue loop are
  indistinguishable on generated kernels, exactly as they are on the
  built-ins;
- the canonical spec string and the registered fingerprint resolve to
  the same behaviour, so cache keys built from either are equivalent.

A non-hypothesis engine test pins jobs=1 vs jobs=2 fan-out equality:
worker processes re-resolve the canonical name from scratch, so the
whole namespace round-trips through process boundaries.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import make_workload
from repro.workloads.gen import MUTABILITY_CLASSES, GenSpec, register_spec


def run_digest(config, workload_name, ops_per_thread, seed):
    machine = build_machine(
        config, make_workload(workload_name, ops_per_thread=ops_per_thread),
        seed=seed,
    )
    stats = machine.run()
    return {
        "stats": json.dumps(stats.to_dict(), sort_keys=True),
        "events": machine.event_count,
        "memory": sorted(machine.memory.snapshot().items()),
    }


gen_specs = st.builds(
    GenSpec,
    regions=st.integers(min_value=1, max_value=3),
    footprint=st.integers(min_value=1, max_value=6),
    mutability=st.sampled_from(MUTABILITY_CLASSES),
    contention=st.sampled_from([0.0, 0.25, 0.75, 1.0]),
    read_fraction=st.sampled_from([0.0, 0.25, 1.0]),
    nesting=st.integers(min_value=1, max_value=3),
    hot_lines=st.just(8),
    private_lines=st.just(16),
)


@given(
    spec=gen_specs,
    design=st.sampled_from(["baseline", "clear"]),
    seed=st.integers(min_value=1, max_value=10_000),
    num_cores=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_same_spec_and_seed_is_byte_identical(spec, design, seed, num_cores):
    name = "gen:" + spec.canonical()
    config = SimConfig.for_design(design, num_cores=num_cores)
    first = run_digest(config, name, 4, seed)
    second = run_digest(config, name, 4, seed)
    assert second == first


@given(
    spec=gen_specs,
    design=st.sampled_from(["baseline", "powertm", "clear", "lrw"]),
    seed=st.integers(min_value=1, max_value=10_000),
    num_cores=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_backends_indistinguishable_on_generated(spec, design, seed,
                                                 num_cores):
    name = "gen:" + spec.canonical()
    digests = {}
    for backend in ("reference", "batch"):
        config = SimConfig.for_design(
            design, num_cores=num_cores, backend=backend
        )
        digests[backend] = run_digest(config, name, 4, seed)
    assert digests["batch"] == digests["reference"]


@given(
    spec=gen_specs,
    seed=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_fingerprint_and_spec_string_agree(spec, seed):
    fingerprint = register_spec(spec)
    config = SimConfig(num_cores=2, design="clear")
    by_spec = run_digest(config, "gen:" + spec.canonical(), 3, seed)
    by_fingerprint = run_digest(config, "gen:" + fingerprint[:12], 3, seed)
    assert by_fingerprint == by_spec


def test_engine_fanout_is_schedule_free(tmp_path):
    """jobs=1 and jobs=2 produce identical reports for gen: workloads."""
    from repro import api
    from repro.sim.engine import ExperimentEngine

    name = "gen:regions=2,footprint=3,mutability=mixed,contention=0.75"
    config = SimConfig(num_cores=4, design="clear")
    reports = {}
    for jobs in (1, 2):
        engine = ExperimentEngine(
            jobs=jobs, cache_dir=str(tmp_path / "cache{}".format(jobs))
        )
        report = api.simulate(
            name, config, seeds=(1, 2, 3), ops_per_thread=4, engine=engine,
        )
        reports[jobs] = json.dumps(
            [run.stats.to_dict() for run in report.runs], sort_keys=True
        )
    assert reports[2] == reports[1]
