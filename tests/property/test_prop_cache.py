"""Property-based tests for the set-associative cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssocCache

lines = st.integers(min_value=0, max_value=255)


def build_cache():
    return SetAssocCache(size_bytes=4 * 2 * 64, assoc=2)  # 4 sets x 2 ways


@given(st.lists(lines, max_size=200))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_geometry(sequence):
    cache = build_cache()
    for line in sequence:
        cache.insert(line)
    per_set = {}
    for line in cache.resident_lines():
        per_set.setdefault(cache.set_index(line), []).append(line)
    for entries in per_set.values():
        assert len(entries) <= cache.assoc
        assert len(set(entries)) == len(entries)


@given(st.lists(lines, max_size=200))
@settings(max_examples=60, deadline=None)
def test_most_recent_insert_always_resident(sequence):
    cache = build_cache()
    for line in sequence:
        cache.insert(line)
        assert cache.contains(line)


@given(st.lists(lines, min_size=1, max_size=100), st.data())
@settings(max_examples=60, deadline=None)
def test_pinned_lines_survive_any_traffic(pin_candidates, data):
    cache = build_cache()
    pinned = []
    for line in pin_candidates[:2]:
        if cache.set_index(line) not in [cache.set_index(p) for p in pinned]:
            cache.insert(line)
            cache.pin(line)
            pinned.append(line)
    traffic = data.draw(st.lists(lines, max_size=150))
    for line in traffic:
        try:
            cache.insert(line)
        except OverflowError:
            pass
    for line in pinned:
        assert cache.contains(line)
        assert cache.is_pinned(line)


@given(st.sets(lines, max_size=40))
@settings(max_examples=60, deadline=None)
def test_can_coreside_matches_insertion_feasibility(footprint):
    cache = build_cache()
    feasible = cache.can_coreside(footprint)
    per_set = {}
    for line in footprint:
        per_set[cache.set_index(line)] = per_set.get(cache.set_index(line), 0) + 1
    assert feasible == all(count <= cache.assoc for count in per_set.values())


@given(st.lists(lines, max_size=120))
@settings(max_examples=60, deadline=None)
def test_invalidate_then_absent(sequence):
    cache = build_cache()
    for line in sequence:
        cache.insert(line)
        cache.invalidate(line)
        assert not cache.contains(line)
