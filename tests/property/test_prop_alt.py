"""Property-based tests for the Addresses-to-Lock Table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alt import AddressToLockTable, AltOverflow

NUM_SETS = 8

lines = st.integers(min_value=0, max_value=127)
accesses = st.lists(st.tuples(lines, st.booleans()), max_size=64)


def fill(alt, sequence):
    tracked = {}
    for line, written in sequence:
        try:
            alt.record_access(line, line % NUM_SETS, written)
        except AltOverflow:
            return tracked, True
        tracked[line] = tracked.get(line, False) or written
    return tracked, False


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_entries_always_lexicographically_sorted(sequence):
    alt = AddressToLockTable(32)
    fill(alt, sequence)
    alt.verify_sorted()


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_needs_locking_iff_ever_written(sequence):
    alt = AddressToLockTable(64)
    tracked, overflowed = fill(alt, sequence)
    if overflowed:
        return
    for line, written in tracked.items():
        assert alt.entry(line).needs_locking == written


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_no_duplicate_lines(sequence):
    alt = AddressToLockTable(64)
    fill(alt, sequence)
    planned = alt.all_lines()
    assert len(planned) == len(set(planned))


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_plan_covers_exactly_the_required_lines(sequence):
    alt = AddressToLockTable(64)
    tracked, overflowed = fill(alt, sequence)
    if overflowed:
        return
    full_plan = {
        entry.line for group in alt.locking_plan(lock_all=True) for entry in group
    }
    assert full_plan == set(tracked)
    selective = {
        entry.line for group in alt.locking_plan(lock_all=False) for entry in group
    }
    assert selective == {line for line, written in tracked.items() if written}


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_groups_partition_by_directory_set(sequence):
    alt = AddressToLockTable(64)
    fill(alt, sequence)
    plan = alt.locking_plan(lock_all=True)
    seen_sets = []
    for group in plan:
        group_sets = {entry.dir_set for entry in group}
        assert len(group_sets) == 1
        seen_sets.append(group_sets.pop())
    # Groups appear in strictly increasing directory-set order.
    assert seen_sets == sorted(seen_sets)
    assert len(set(seen_sets)) == len(seen_sets)


@given(st.sets(lines, min_size=33, max_size=64))
@settings(max_examples=40, deadline=None)
def test_capacity_enforced(footprint):
    alt = AddressToLockTable(32)
    overflowed = False
    for line in footprint:
        try:
            alt.record_access(line, line % NUM_SETS, False)
        except AltOverflow:
            overflowed = True
            break
    assert overflowed
    assert len(alt) <= 32
