"""Property test: schedule artifacts replay bit-identically.

For any workload/seed/fuzzing-scheduler combination, recording an
explored schedule into a :class:`ScheduleArtifact`, pushing it through
its JSON serialization, and replaying the decision list must reproduce
the original run exactly — same stats, same final-memory digest, and
the same event trace, event for event. This is the contract the whole
shrink-and-replay pipeline stands on: if replay drifted even one cycle,
minimized artifacts would describe schedules nobody ever ran.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import EventTrace
from repro.sim.config import SimConfig
from repro.verify import (
    PCTScheduler,
    RandomScheduler,
    ScheduleArtifact,
    replay_artifact,
    run_schedule,
)
from repro.workloads import make_workload

WORKLOADS = ("mwobject", "hashmap", "queue")


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=1, max_value=50),
    explore_seed=st.integers(min_value=0, max_value=1000),
    cores=st.integers(min_value=2, max_value=4),
    pct=st.booleans(),
)
def test_record_serialize_replay_round_trips(name, seed, explore_seed,
                                             cores, pct):
    config = SimConfig.for_design("baseline", num_cores=cores, oracle="shadow")
    factory = lambda: make_workload(name, ops_per_thread=3)  # noqa: E731
    if pct:
        scheduler = PCTScheduler(explore_seed, num_cores=cores)
    else:
        scheduler = RandomScheduler(explore_seed)

    recorded = run_schedule(factory, config, seed, scheduler,
                            trace=EventTrace())
    assert recorded.ok, recorded.violations

    artifact = ScheduleArtifact(
        name, config, seed, recorded.decisions, ops_per_thread=3,
        stats_sha256=recorded.stats_sha256,
        state_sha256=recorded.state_sha256,
    )
    reloaded = ScheduleArtifact.from_json(artifact.to_json())

    replayed = replay_artifact(reloaded, trace=True)
    assert replayed.ok
    assert replayed.decisions == recorded.decisions
    assert replayed.stats_sha256 == recorded.stats_sha256
    assert replayed.state_sha256 == recorded.state_sha256
    assert replayed.stats.to_dict() == recorded.stats.to_dict()
    assert replayed.trace.to_dicts() == recorded.trace.to_dicts()
