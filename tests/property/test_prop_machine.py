"""Property-based whole-machine tests: randomized contended counters.

Random mixes of increments over a small set of shared counters must be
exactly serializable — the final counter values equal the number of
committed increments targeting them — in every configuration, for any
seed, with no deadlock and no leaked locks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import WORDS_PER_LINE
from repro.common.rng import DeterministicRng
from repro.memory.shared import Allocator, SharedMemory
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Compute, Invoke, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload


class RandomCounterWorkload(Workload):
    """Each invocation increments 1-3 random counters (pre-computed
    addresses, so regions are immutable and NS-CL eligible)."""

    name = "prop-counters"

    def __init__(self, num_counters, ops_per_thread):
        super().__init__(ops_per_thread=ops_per_thread, think_cycles=(1, 20))
        self.num_counters = num_counters
        self.base = None
        self.increments_issued = None

    def region_specs(self):
        return [RegionSpec("inc", Mutability.IMMUTABLE)]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.base = allocator.alloc_lines(self.num_counters)
        self.increments_issued = [0] * self.num_counters

    def counter_addr(self, index):
        return self.base + index * WORDS_PER_LINE

    def make_invocation(self, thread_id, rng):
        count = rng.randint(1, min(3, self.num_counters))
        picks = rng.sample(range(self.num_counters), count)
        for index in picks:
            self.increments_issued[index] += 1
        addrs = [self.counter_addr(index) for index in picks]

        def body():
            for addr in addrs:
                value = yield Load(addr)
                yield Compute(1)
                yield Store(addr, value + 1)

        return self.invoke("inc", body)


@given(
    letter=st.sampled_from(["B", "P", "C", "W"]),
    seed=st.integers(min_value=1, max_value=10_000),
    num_counters=st.integers(min_value=1, max_value=6),
    retry_threshold=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_random_contention_is_serializable(letter, seed, num_counters, retry_threshold):
    config = SimConfig.for_design(design_name(letter), num_cores=4, retry_threshold=retry_threshold
    )
    workload = RandomCounterWorkload(num_counters, ops_per_thread=5)
    machine = Machine(config, workload, seed=seed)
    stats = machine.run()
    assert not stats.truncated
    assert stats.total_commits == 4 * 5
    for index in range(num_counters):
        assert (
            machine.memory.peek(workload.counter_addr(index))
            == workload.increments_issued[index]
        )
    assert machine.memsys.locks.locked_line_count() == 0
    assert not machine.fallback.is_write_held()
    assert machine.fallback.readers == frozenset()
    from repro.sim.validate import validate_machine

    assert validate_machine(machine)
