"""Property tests: injected faults never break correctness.

For random fault rates, seeds, and configurations, a chaos run of the
pointer-chasing workloads must (a) pass the commit-order
serializability oracle and the leak checks, (b) keep every final
data-structure invariant, and (c) be bit-reproducible from its seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

pytestmark = pytest.mark.slow


def build_machine(name, letter, seed, spurious, capacity, jitter):
    config = SimConfig.for_design(design_name(letter),
        num_cores=4,
        oracle="shadow",
        fault_spurious_rate=spurious,
        fault_capacity_rate=capacity,
        fault_jitter_cycles=jitter,
        fault_wakeup_delay_cycles=jitter,
    )
    return Machine(
        config, make_workload(name, ops_per_thread=4), seed=seed
    )


@given(
    letter=st.sampled_from(["B", "P", "C", "W"]),
    seed=st.integers(min_value=1, max_value=10_000),
    spurious=st.floats(min_value=0.0, max_value=0.3),
    capacity=st.floats(min_value=0.0, max_value=0.2),
    jitter=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=20, deadline=None)
def test_hashmap_survives_chaos_with_invariants(
    letter, seed, spurious, capacity, jitter
):
    machine = build_machine("hashmap", letter, seed, spurious, capacity, jitter)
    stats = machine.run()  # oracle verifies serializability + leaks
    assert stats.total_commits > 0
    workload = machine.workload
    seen = []
    for bucket in range(workload.num_buckets):
        keys = workload.chain_keys(machine.memory, bucket)  # no cycles,
        seen.extend(keys)  # every key in its home bucket
    assert len(seen) == len(set(seen)), "duplicate key across chains"


@given(
    letter=st.sampled_from(["B", "P", "C", "W"]),
    seed=st.integers(min_value=1, max_value=10_000),
    spurious=st.floats(min_value=0.0, max_value=0.3),
)
@settings(max_examples=10, deadline=None)
def test_labyrinth_survives_chaos(letter, seed, spurious):
    machine = build_machine("labyrinth", letter, seed, spurious, 0.05, 3)
    stats = machine.run()
    assert stats.total_commits > 0
    assert machine.memsys.locks.locked_line_count() == 0


@given(
    seed=st.integers(min_value=1, max_value=10_000),
    spurious=st.floats(min_value=0.01, max_value=0.3),
)
@settings(max_examples=10, deadline=None)
def test_chaos_runs_are_reproducible(seed, spurious):
    runs = []
    for _ in range(2):
        machine = build_machine("hashmap", "C", seed, spurious, 0.05, 4)
        stats = machine.run()
        runs.append((list(machine.faults.log), stats.to_dict()))
    assert runs[0] == runs[1]
