"""Property-based tests for sweep-journal crash recovery.

The journal's durability claim, stated as invariants:

- **Truncation safety** — a crash may cut the log at *any* byte offset
  inside the final record. Whatever the offset, replay must never
  raise, must recover every fully-written record, may additionally
  recover the final record only when its payload survived intact, and
  must leave the log appendable (the repair lands on a line boundary).
- **Resume convergence** (slow) — under an arbitrary seeded fault plan
  tearing journal appends, a run plus one resume always converges to
  the uninterrupted sweep's exact results.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.retry import RetryPolicy
from repro.sim.config import SimConfig
from repro.sim.engine import ExperimentEngine, RunSpec
from repro.sim.enginefaults import EngineFaultPlan, FaultyIO
from repro.sim.journal import SweepJournal

record_values = st.dictionaries(
    st.sampled_from(["cycles", "aborts", "pad"]),
    st.one_of(st.integers(0, 10**6), st.text(max_size=8)),
    max_size=3,
)


def build_journal(root, records):
    journal = SweepJournal(os.path.join(root, "job"))
    for index, value in enumerate(records):
        journal.record_result("key-{}".format(index), value)
    return journal


@given(
    st.lists(record_values, min_size=1, max_size=5),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=80, deadline=None)
def test_truncation_anywhere_in_final_record_recovers(records, cut_seed):
    # hypothesis reuses examples across runs, so the scratch directory
    # must be per-example (a function-scoped tmp_path fixture is not).
    with tempfile.TemporaryDirectory() as root:
        journal = build_journal(root, records)
        with open(journal.log_path, "rb") as handle:
            intact = handle.read()
        boundary = (
            intact.rindex(b"\n", 0, len(intact) - 1) + 1
            if intact.count(b"\n") > 1 else 0
        )
        # Cut anywhere from "final record fully gone" to "only its
        # newline gone" — every offset a crash could leave behind.
        cut = boundary + cut_seed % (len(intact) - boundary)
        with open(journal.log_path, "wb") as handle:
            handle.write(intact[:cut])

        recovered = SweepJournal(journal.path)
        replayed = recovered.replay()

        complete = {
            "key-{}".format(i): value
            for i, value in enumerate(records[:-1])
        }
        last_key = "key-{}".format(len(records) - 1)
        assert set(replayed) - {last_key} == set(complete)
        for key, value in complete.items():
            assert replayed[key]["result"] == value
        if last_key in replayed:
            # Only the terminator was lost: the payload must be exact.
            assert replayed[last_key]["result"] == records[-1]
            assert recovered.dropped_tail == 0
        else:
            # Torn bytes were dropped — unless the cut landed exactly
            # on the boundary, where there is nothing to drop.
            assert recovered.dropped_tail == (1 if cut > boundary else 0)

        # The repair restored a clean boundary: appending still works
        # and a fresh replay sees old and new records.
        recovered.record_result("fresh", {"v": 1})
        final = SweepJournal(journal.path).replay()
        assert final["fresh"]["result"] == {"v": 1}
        assert set(complete) <= set(final)
        with open(journal.log_path, "rb") as handle:
            assert handle.read().endswith(b"\n")


@given(st.lists(record_values, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_replay_equals_what_was_recorded(records):
    with tempfile.TemporaryDirectory() as root:
        journal = build_journal(root, records)
        replayed = SweepJournal(journal.path).replay()
        assert len(replayed) == len(records)
        for index, value in enumerate(records):
            assert replayed["key-{}".format(index)]["result"] == value


@given(st.binary(max_size=200))
@settings(max_examples=60, deadline=None)
def test_arbitrary_log_garbage_never_crashes_replay(garbage):
    with tempfile.TemporaryDirectory() as root:
        journal = SweepJournal(os.path.join(root, "job"))
        os.makedirs(journal.path)
        with open(journal.log_path, "wb") as handle:
            handle.write(garbage)
        recovered = SweepJournal(journal.path)
        replayed = recovered.replay()  # must not raise
        for record in replayed.values():
            assert record["status"] in ("done", "failed")
        # Whatever survived, the log must be appendable afterwards.
        recovered.record_result("fresh", {"v": 1})
        assert SweepJournal(journal.path).replay()["fresh"]["result"] == {
            "v": 1
        }


@pytest.mark.slow
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=8, deadline=None)
def test_resume_converges_under_any_fault_plan(seed, torn_rate):
    specs = [
        RunSpec(
            workload="mwobject",
            config=SimConfig.for_design("baseline", num_cores=2),
            seed=s,
            ops_per_thread=3,
        )
        for s in (1, 2)
    ]
    clean = ExperimentEngine(jobs=1, cache_dir=None).run_specs_report(specs)
    expected = json.dumps([r.to_dict() for r in clean.results], sort_keys=True)
    plan = EngineFaultPlan(seed=seed, torn_write_rate=torn_rate)
    with tempfile.TemporaryDirectory() as root:
        job = os.path.join(root, "job")
        first = ExperimentEngine(
            jobs=1, cache_dir=None,
            retry_policy=RetryPolicy(base_seconds=0.0),
        ).run_specs_report(specs, journal=SweepJournal(job, io=FaultyIO(plan)))
        assert first.ok
        resumed = ExperimentEngine(jobs=1, cache_dir=None).run_specs_report(
            specs, journal=job
        )
        assert resumed.ok
        got = json.dumps(
            [r.to_dict() for r in resumed.results], sort_keys=True
        )
        assert got == expected
        assert (resumed.journal["replayed"] + resumed.journal["executed"]
                == len(specs))
