"""Property-based backend equivalence: random cells, identical results.

Hypothesis drives random (workload, design, seed, scale) cells through
the reference heap loop and the batched calendar-queue loop and asserts
the two are indistinguishable: equal stats dicts, equal event-loop pop
counts, and equal final architectural memory. This catches equivalence
bugs the pinned matrices cannot — odd core counts, unusual retry
thresholds, and the SLE speculation substrate crossed with the
post-paper designs.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.design import DESIGN_REGISTRY
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import ALL_NAMES, make_workload


def run_digest(config, workload_name, ops_per_thread, seed):
    machine = build_machine(
        config, make_workload(workload_name, ops_per_thread=ops_per_thread),
        seed=seed,
    )
    stats = machine.run()
    return {
        "stats": json.dumps(stats.to_dict(), sort_keys=True),
        "events": machine.event_count,
        "memory": sorted(machine.memory.snapshot().items()),
    }


@given(
    workload=st.sampled_from(ALL_NAMES),
    design=st.sampled_from(sorted(DESIGN_REGISTRY)),
    seed=st.integers(min_value=1, max_value=10_000),
    num_cores=st.integers(min_value=2, max_value=8),
    ops_per_thread=st.integers(min_value=2, max_value=8),
    retry_threshold=st.integers(min_value=1, max_value=6),
    speculation=st.sampled_from(["htm", "sle"]),
)
@settings(max_examples=30, deadline=None)
def test_backends_indistinguishable(workload, design, seed, num_cores,
                                    ops_per_thread, retry_threshold,
                                    speculation):
    digests = {}
    for backend in ("reference", "batch"):
        config = SimConfig.for_design(
            design, num_cores=num_cores, backend=backend,
            retry_threshold=retry_threshold, speculation=speculation,
        )
        digests[backend] = run_digest(config, workload, ops_per_thread, seed)
    assert digests["batch"] == digests["reference"]
