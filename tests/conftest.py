"""Shared fixtures for the test suite."""

import pytest

from repro.htm.design import design_name
from repro.sim.config import SimConfig


@pytest.fixture
def small_config():
    """A 4-core configuration sized for fast tests."""
    return SimConfig(num_cores=4, retry_threshold=4)


@pytest.fixture
def tiny_clear_config():
    """A 4-core CLEAR configuration."""
    return SimConfig(num_cores=4, retry_threshold=4, design="clear")


@pytest.fixture
def micro_config():
    """Factory: a design configuration scaled down for fast tests.

    ``micro_config("clear", cores=4, retry_threshold=2)`` — design name
    (legacy B/P/C/W letters still resolve) plus any :class:`SimConfig`
    field overrides. Defaults to the 2-core baseline, the smallest
    machine that still exercises contention.
    """

    def make(design="baseline", cores=2, **overrides):
        return SimConfig.for_design(
            design_name(design), num_cores=cores, **overrides
        )

    return make


@pytest.fixture
def micro_machine(micro_config):
    """Factory: a ready-to-run micro machine on a registry workload.

    ``micro_machine("hashmap", "clear", cores=4, seed=2)`` builds the
    scaled config via ``micro_config`` and a named workload via the
    registry (``ops_per_thread`` defaults to 3 — micro scale). A
    prebuilt workload object passes through unchanged. Extra keyword
    arguments split between :class:`SimConfig` field overrides and the
    machine seams (``trace`` / ``scheduler`` / ``retry_ledger``).
    """
    from repro.sim.machine import Machine
    from repro.workloads import make_workload

    def make(workload="mwobject", design="baseline", *, cores=2, seed=1,
             ops_per_thread=3, trace=None, scheduler=None, retry_ledger=None,
             **overrides):
        config = micro_config(design, cores=cores, **overrides)
        if isinstance(workload, str):
            workload = make_workload(workload, ops_per_thread=ops_per_thread)
        return Machine(config, workload, seed=seed, trace=trace,
                       scheduler=scheduler, retry_ledger=retry_ledger)

    return make


def config_for(design, cores=4, **overrides):
    return SimConfig.for_design(design_name(design), num_cores=cores, **overrides)
