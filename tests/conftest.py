"""Shared fixtures for the test suite."""

import pytest

from repro.sim.config import SimConfig


@pytest.fixture
def small_config():
    """A 4-core configuration sized for fast tests."""
    return SimConfig(num_cores=4, retry_threshold=4)


@pytest.fixture
def tiny_clear_config():
    """A 4-core CLEAR configuration."""
    return SimConfig(num_cores=4, retry_threshold=4, clear=True)


def config_for(letter, cores=4, **overrides):
    return SimConfig.for_letter(letter, num_cores=cores, **overrides)
