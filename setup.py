"""Legacy setup shim for offline editable installs (no `wheel` available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CLEAR: bounding speculative execution of atomic regions to a "
        "single retry (ASPLOS 2024) - full Python reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
