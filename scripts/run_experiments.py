#!/usr/bin/env python3
"""Run the full experiment matrix and dump every figure's data to JSON.

Used to populate EXPERIMENTS.md. Scale is chosen via the positional
argument: ``micro`` (4 cores, seconds — the equivalence-suite scale),
``quick`` (8 cores), ``medium`` (32 cores, 3 seeds — the default),
``sweep`` (reduced retry sweep), or ``paper`` (32 cores, 10 seeds,
retry sweep; hours serially). ``--profile`` wraps every simulated cell
in cProfile and prints an aggregated top-15 cumulative table.

The matrix fans out over worker processes (``--jobs``, default: all
cores) and memoizes finished cells in a content-addressed on-disk
cache (``--cache-dir``, default ``.exp_cache``), so re-runs and
crashed sweeps resume for free; ``--no-cache`` forces fresh
simulation. Figure JSON is byte-identical (modulo ``elapsed_seconds``)
whatever the job count, because every cell is independently seeded.

``--trace OUT.json`` additionally exports a Chrome/Perfetto trace of
one representative cell (first benchmark, config B, first seed) and
``--trace-report OUT.txt`` its per-region forensic abort report; both
run after the matrix and never change the figure JSON.

``--journal DIR`` makes the sweep crash-safe: every finished cell is
durably logged into the job folder, and re-running with ``--resume
DIR`` replays completed cells (and remembered quarantines) instead of
re-executing them — a SIGKILL'd sweep resumes with exactly-once cell
execution and byte-identical figure JSON.

Exit status: 0 for a complete matrix, 2 when any cell was quarantined
(the figure JSON is partial — CI and service callers must not treat it
as a full sweep).
"""

import json
import os
import sys
import time

from repro import api, cli
from repro.analysis.experiments import (
    ExperimentSettings,
    figure_payload,
    run_config_matrix,
)
from repro.cli import argparse
from repro.sim.engine import DEFAULT_CACHE_DIR


def settings_for(scale):
    if scale == "paper":
        return ExperimentSettings.paper()
    if scale == "sweep":
        # Paper methodology at reduced seed count: per-application
        # best-of retry threshold, 32 cores.
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2), trim=0,
            retry_sweep=True, sweep_thresholds=(1, 2, 4, 8),
        )
    if scale == "medium":
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2, 3), trim=0
        )
    if scale == "micro":
        return ExperimentSettings.micro()
    return ExperimentSettings.quick()


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale", nargs="?", default="medium",
        choices=("quick", "medium", "sweep", "paper", "micro"),
        help="experiment scale (default: medium)",
    )
    parser.add_argument(
        "out", nargs="?", default=".exp_results.json",
        help="output JSON path (default: .exp_results.json)",
    )
    cli.add_engine_flags(parser)
    cli.add_backend_flag(parser)
    cli.add_journal_flags(parser)
    cli.add_trace_flags(parser)
    parser.add_argument(
        "--benchmarks", default=None, metavar="A,B,...",
        help="comma-separated benchmark subset: built-in names, "
             "gen:<spec|fingerprint|folder>, or trace:<folder> "
             "(default: all 19 built-ins). Multi-axis gen specs contain "
             "commas — pass those by fingerprint or saved kernel folder",
    )
    parser.add_argument(
        "--chaos", nargs="?", type=float, const=0.05, default=None,
        metavar="RATE",
        help="inject seeded faults: spurious aborts at RATE (default "
             "0.05 when given bare), capacity aborts at RATE/2, plus "
             "latency jitter and delayed wakeups",
    )
    cli.add_oracle_flag(parser)
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell; hung cells are retried then "
             "quarantined and the sweep degrades to a partial matrix",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run every simulated cell under cProfile, dump per-cell "
             ".prof files next to the cache dir, and print a top-15 "
             "cumulative-time table (cache hits are not profiled)",
    )
    parser.add_argument(
        "--debug-conflict-check", action="store_true",
        help="cross-validate the sharer-index conflict path against the "
             "legacy full peer scan on every resolution (slow; any "
             "divergence raises)",
    )
    args = parser.parse_args(argv)
    cli.validate_engine_flags(parser, args)
    cli.validate_journal_flags(parser, args)
    if args.chaos is not None and not 0.0 <= args.chaos <= 1.0:
        parser.error("--chaos RATE must be in [0, 1], not {}".format(args.chaos))
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be positive")
    if args.benchmarks:
        args.benchmark_list = cli.resolve_workload_names(
            parser, args.benchmarks.split(",")
        )
    else:
        args.benchmark_list = None
    return args


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    settings = settings_for(args.scale)
    if args.benchmark_list:
        settings.benchmarks = tuple(args.benchmark_list)
    if args.chaos is not None:
        settings.config_overrides.update(
            fault_spurious_rate=args.chaos,
            fault_capacity_rate=args.chaos / 2.0,
            fault_jitter_cycles=4,
            fault_wakeup_delay_cycles=8,
        )
    if args.oracle is not None:
        settings.config_overrides["oracle"] = args.oracle
    # Always journalled (even for the default) so a resumed sweep can
    # verify it is continuing with the same event loop.
    settings.config_overrides["backend"] = args.backend
    if args.debug_conflict_check:
        settings.config_overrides["debug_conflict_check"] = True
    jobs = cli.resolve_jobs(args)
    cache_dir = cli.resolve_cache_dir(args)
    profile_dir = None
    if args.profile:
        profile_dir = (cache_dir or DEFAULT_CACHE_DIR) + ".profiles"
    started = time.time()

    def engine_progress(event):
        print(
            "\r[{:>4}/{}] {:5.1f} cells/s  {} cache hit(s)  ETA {:4.0f}s ".format(
                event.done, event.total, event.cells_per_second,
                event.cache_hits, event.eta_seconds,
            ),
            end="", flush=True,
        )

    def progress(name, letter, aggregate):
        print(
            "\r{:>7.1f}s  {:12s} {}  cycles={:,.0f}  a/c={:.2f}".format(
                time.time() - started, name, letter,
                aggregate.cycles, aggregate.aborts_per_commit,
            ),
            flush=True,
        )

    engine = cli.build_engine(
        args, progress=engine_progress,
        cell_timeout=args.cell_timeout, profile_dir=profile_dir,
    )
    journal = cli.resolve_journal(args)
    report = None
    if args.cell_timeout is not None or journal is not None:
        matrix, report = run_config_matrix(
            settings, progress=progress, engine=engine, allow_partial=True,
            journal=journal,
        )
    else:
        matrix = run_config_matrix(settings, progress=progress, engine=engine)

    payload = {
        "scale": args.scale,
        "num_cores": settings.num_cores,
        "seeds": list(settings.seeds),
    }
    payload.update(figure_payload(matrix))
    payload["elapsed_seconds"] = time.time() - started
    if args.chaos is not None:
        payload["chaos"] = {
            "fault_spurious_rate": args.chaos,
            "fault_capacity_rate": args.chaos / 2.0,
        }
    # Only a sweep that actually lost cells carries a failure report, so
    # a clean run's JSON stays byte-identical to one from a build
    # without the fault-tolerance machinery.
    if report is not None and report.failures:
        payload["failures"] = report.failure_report()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote {} after {:.0f}s ({} jobs, cache {})".format(
        args.out, payload["elapsed_seconds"], jobs,
        cache_dir or "disabled",
    ))
    if report is not None and report.journal is not None:
        counters = report.journal
        print("journal {}: replayed={} replayed_failures={} executed={} "
              "cache_hits={} dropped_tail={} skipped_corrupt={}".format(
                  counters["job_dir"], counters["replayed"],
                  counters["replayed_failures"], counters["executed"],
                  report.cache_hits, counters["dropped_tail"],
                  counters["skipped_corrupt"]))
    exit_status = 0
    if report is not None and report.failures:
        print("WARNING: {} of {} cells failed; matrix is partial "
              "(see \"failures\" in {})".format(
                  len(report.failures), report.total, args.out))
        # Partial matrices must be machine-detectable: CI gates and
        # service callers key off the exit status, not the warning text.
        exit_status = 2
    if cli.wants_trace(args):
        export_trace(settings, engine, args)
    if profile_dir is not None:
        print_profile_summary(profile_dir)
    return exit_status


def export_trace(settings, engine, args):
    """Trace one representative cell and write the requested exports.

    Runs after (and independently of) the matrix, so the figure JSON is
    byte-identical with or without ``--trace``. The representative cell
    is the first benchmark of the scale under the baseline (B)
    configuration on the first seed — the same simulation the matrix
    ran, re-executed with an event trace attached (a traced cell keys
    the cache separately, so neither run pollutes the other's entries).
    """
    name = settings.benchmarks[0]
    report = api.simulate(
        name, settings.config_for("B"), seeds=settings.seeds[0],
        ops_per_thread=settings.ops_per_thread, trace=True, engine=engine,
    )
    print("traced {}/B/{}c seed={} ({} events)".format(
        name, settings.num_cores, settings.seeds[0], len(report.trace)))
    if args.trace:
        report.write_chrome_trace(args.trace)
        print("wrote Chrome trace {} (load in Perfetto / chrome://tracing)"
              .format(args.trace))
    if args.trace_report:
        report.write_forensic_report(args.trace_report)
        print("wrote forensic report {}".format(args.trace_report))


def print_profile_summary(profile_dir, top=15):
    """Aggregate every per-cell .prof and print the hottest functions."""
    import glob
    import pstats

    prof_files = sorted(glob.glob(os.path.join(profile_dir, "*.prof")))
    if not prof_files:
        print("no profiles written (every cell served from cache?); "
              "re-run with --no-cache to profile")
        return
    stats = pstats.Stats(prof_files[0])
    for path in prof_files[1:]:
        stats.add(path)
    print("\naggregated {} cell profile(s) from {}".format(
        len(prof_files), profile_dir))
    stats.sort_stats("cumulative").print_stats(top)


if __name__ == "__main__":
    sys.exit(main())
