#!/usr/bin/env python3
"""Run the full experiment matrix and dump every figure's data to JSON.

Used to populate EXPERIMENTS.md. Scale is chosen via argv[1]:
``quick`` (8 cores), ``medium`` (32 cores, 3 seeds — the default), or
``paper`` (32 cores, 10 seeds, retry sweep; hours).
"""

import json
import sys
import time

from repro.analysis.experiments import (
    CONFIG_LETTERS,
    ExperimentSettings,
    fig1_retry_immutability,
    fig8_execution_time,
    fig9_aborts_per_commit,
    fig10_energy,
    fig11_abort_breakdown,
    fig12_commit_modes,
    fig13_retry_bound,
    headline_summary,
    run_config_matrix,
)


def settings_for(scale):
    if scale == "paper":
        return ExperimentSettings.paper()
    if scale == "sweep":
        # Paper methodology at reduced seed count: per-application
        # best-of retry threshold, 32 cores.
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2), trim=0,
            retry_sweep=True, sweep_thresholds=(1, 2, 4, 8),
        )
    if scale == "medium":
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2, 3), trim=0
        )
    return ExperimentSettings.quick()


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "medium"
    out_path = sys.argv[2] if len(sys.argv) > 2 else ".exp_results.json"
    settings = settings_for(scale)
    started = time.time()

    def progress(name, letter, aggregate):
        print(
            "{:>7.1f}s  {:12s} {}  cycles={:,.0f}  a/c={:.2f}".format(
                time.time() - started, name, letter,
                aggregate.cycles, aggregate.aborts_per_commit,
            ),
            flush=True,
        )

    matrix = run_config_matrix(settings, progress=progress)

    times, discovery = fig8_execution_time(matrix)
    payload = {
        "scale": scale,
        "num_cores": settings.num_cores,
        "seeds": list(settings.seeds),
        "fig1": fig1_retry_immutability(matrix),
        "fig8_times": {k: v for k, v in times.items()},
        "fig8_discovery": discovery,
        "fig9": fig9_aborts_per_commit(matrix),
        "fig10": fig10_energy(matrix),
        "fig11": {
            name: {
                letter: {cat.value: share for cat, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig11_abort_breakdown(matrix).items()
        },
        "fig12": {
            name: {
                letter: {mode.value: share for mode, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig12_commit_modes(matrix).items()
        },
        "fig13": {
            name: {letter: list(triple) for letter, triple in per_config.items()}
            for name, per_config in fig13_retry_bound(matrix).items()
        },
        "headline": headline_summary(matrix),
        "elapsed_seconds": time.time() - started,
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote {} after {:.0f}s".format(out_path, payload["elapsed_seconds"]))


if __name__ == "__main__":
    main()
