#!/usr/bin/env python3
"""Run the full experiment matrix and dump every figure's data to JSON.

Used to populate EXPERIMENTS.md. Scale is chosen via the positional
argument: ``quick`` (8 cores), ``medium`` (32 cores, 3 seeds — the
default), ``sweep`` (reduced retry sweep), or ``paper`` (32 cores, 10
seeds, retry sweep; hours serially).

The matrix fans out over worker processes (``--jobs``, default: all
cores) and memoizes finished cells in a content-addressed on-disk
cache (``--cache-dir``, default ``.exp_cache``), so re-runs and
crashed sweeps resume for free; ``--no-cache`` forces fresh
simulation. Figure JSON is byte-identical (modulo ``elapsed_seconds``)
whatever the job count, because every cell is independently seeded.
"""

import argparse
import json
import os
import sys
import time

from repro.analysis.experiments import (
    CONFIG_LETTERS,
    ExperimentSettings,
    fig1_retry_immutability,
    fig8_execution_time,
    fig9_aborts_per_commit,
    fig10_energy,
    fig11_abort_breakdown,
    fig12_commit_modes,
    fig13_retry_bound,
    headline_summary,
    run_config_matrix,
)
from repro.sim.engine import DEFAULT_CACHE_DIR


def settings_for(scale):
    if scale == "paper":
        return ExperimentSettings.paper()
    if scale == "sweep":
        # Paper methodology at reduced seed count: per-application
        # best-of retry threshold, 32 cores.
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2), trim=0,
            retry_sweep=True, sweep_thresholds=(1, 2, 4, 8),
        )
    if scale == "medium":
        return ExperimentSettings(
            num_cores=32, ops_per_thread=16, seeds=(1, 2, 3), trim=0
        )
    return ExperimentSettings.quick()


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scale", nargs="?", default="medium",
        choices=("quick", "medium", "sweep", "paper", "micro"),
        help="experiment scale (default: medium)",
    )
    parser.add_argument(
        "out", nargs="?", default=".exp_results.json",
        help="output JSON path (default: .exp_results.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help="on-disk result cache root (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache entirely",
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="A,B,...",
        help="comma-separated benchmark subset (default: all 19)",
    )
    parser.add_argument(
        "--chaos", nargs="?", type=float, const=0.05, default=None,
        metavar="RATE",
        help="inject seeded faults: spurious aborts at RATE (default "
             "0.05 when given bare), capacity aborts at RATE/2, plus "
             "latency jitter and delayed wakeups",
    )
    parser.add_argument(
        "--oracle", action="store_true",
        help="run the serializability/leak/invariant oracles on every cell",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell; hung cells are retried then "
             "quarantined and the sweep degrades to a partial matrix",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1, not {}".format(args.jobs))
    if args.chaos is not None and not 0.0 <= args.chaos <= 1.0:
        parser.error("--chaos RATE must be in [0, 1], not {}".format(args.chaos))
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        parser.error("--cell-timeout must be positive")
    if args.benchmarks:
        from repro.workloads import ALL_NAMES

        unknown = set(args.benchmarks.split(",")) - set(ALL_NAMES)
        if unknown:
            parser.error("unknown benchmark(s) {}; choose from {}".format(
                ",".join(sorted(unknown)), ",".join(ALL_NAMES)))
    return args


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    settings = settings_for(args.scale)
    if args.benchmarks:
        settings.benchmarks = tuple(args.benchmarks.split(","))
    if args.chaos is not None:
        settings.config_overrides.update(
            fault_spurious_rate=args.chaos,
            fault_capacity_rate=args.chaos / 2.0,
            fault_jitter_cycles=4,
            fault_wakeup_delay_cycles=8,
        )
    if args.oracle:
        settings.config_overrides["oracle"] = True
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache_dir = None if args.no_cache else args.cache_dir
    started = time.time()

    def engine_progress(event):
        print(
            "\r[{:>4}/{}] {:5.1f} cells/s  {} cache hit(s)  ETA {:4.0f}s ".format(
                event.done, event.total, event.cells_per_second,
                event.cache_hits, event.eta_seconds,
            ),
            end="", flush=True,
        )

    def progress(name, letter, aggregate):
        print(
            "\r{:>7.1f}s  {:12s} {}  cycles={:,.0f}  a/c={:.2f}".format(
                time.time() - started, name, letter,
                aggregate.cycles, aggregate.aborts_per_commit,
            ),
            flush=True,
        )

    report = None
    if args.cell_timeout is not None:
        matrix, report = run_config_matrix(
            settings, progress=progress, jobs=jobs, cache_dir=cache_dir,
            engine_progress=engine_progress, cell_timeout=args.cell_timeout,
            allow_partial=True,
        )
    else:
        matrix = run_config_matrix(
            settings, progress=progress, jobs=jobs, cache_dir=cache_dir,
            engine_progress=engine_progress,
        )

    times, discovery = fig8_execution_time(matrix)
    payload = {
        "scale": args.scale,
        "num_cores": settings.num_cores,
        "seeds": list(settings.seeds),
        "fig1": fig1_retry_immutability(matrix),
        "fig8_times": {k: v for k, v in times.items()},
        "fig8_discovery": discovery,
        "fig9": fig9_aborts_per_commit(matrix),
        "fig10": fig10_energy(matrix),
        "fig11": {
            name: {
                letter: {cat.value: share for cat, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig11_abort_breakdown(matrix).items()
        },
        "fig12": {
            name: {
                letter: {mode.value: share for mode, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig12_commit_modes(matrix).items()
        },
        "fig13": {
            name: {letter: list(triple) for letter, triple in per_config.items()}
            for name, per_config in fig13_retry_bound(matrix).items()
        },
        "headline": headline_summary(matrix),
        "elapsed_seconds": time.time() - started,
    }
    if args.chaos is not None:
        payload["chaos"] = {
            "fault_spurious_rate": args.chaos,
            "fault_capacity_rate": args.chaos / 2.0,
        }
    # Only a sweep that actually lost cells carries a failure report, so
    # a clean run's JSON stays byte-identical to one from a build
    # without the fault-tolerance machinery.
    if report is not None and report.failures:
        payload["failures"] = report.failure_report()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print("wrote {} after {:.0f}s ({} jobs, cache {})".format(
        args.out, payload["elapsed_seconds"], jobs,
        cache_dir or "disabled",
    ))
    if report is not None and report.failures:
        print("WARNING: {} of {} cells failed; matrix is partial "
              "(see \"failures\" in {})".format(
                  len(report.failures), report.total, args.out))


if __name__ == "__main__":
    main()
