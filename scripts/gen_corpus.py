#!/usr/bin/env python3
"""Grow an on-disk workload corpus of generated kernels.

Sweeps the generator axes (footprint, mutability class, contention;
optionally regions/nesting/read mix) into one kernel folder per spec —
``OUT_DIR/<fingerprint12>/genspec.json`` plus a ``corpus.json`` index —
following the same folder-per-kernel convention the recorded-trace
format uses. Each kernel is then addressable as
``gen:OUT_DIR/<fingerprint12>`` from any script, or by fingerprint
after ``repro.workloads.gen.load_corpus(OUT_DIR)``.

``--record`` additionally records each kernel's trace (one run under
``--design``/``--cores``/``--seed``) into ``<kernel>/trace/``, giving
every generated kernel a replayable ``trace:`` twin. ``--check`` runs
every kernel (and recorded trace) through ``api.simulate`` with the
online serializability monitor armed and reports commits/cycles — a
corpus that passes is safe to commit.

Exit status: 0 on success, 2 on a bad spec axis or a failed check.
"""

import itertools
import json
import sys

from repro import api, cli
from repro.cli import argparse
from repro.common.errors import ConfigurationError, ReproError
from repro.sim.config import SimConfig
from repro.workloads.gen import GenSpec, save_gen_spec
from repro.workloads.trace import record_trace


def _floats(text):
    return [float(part) for part in text.split(",") if part.strip()]


def _ints(text):
    return [int(part) for part in text.split(",") if part.strip()]


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out", help="corpus directory (created if missing)")
    parser.add_argument(
        "--footprints", default="2,4,8", metavar="N,N,...", type=_ints,
        help="footprint axis in cachelines (default: %(default)s)",
    )
    parser.add_argument(
        "--mutability", default="immutable,likely_immutable,mutable",
        metavar="C,C,...",
        help="mutability-class axis (default: %(default)s)",
    )
    parser.add_argument(
        "--contention", default="0.2,0.8", metavar="F,F,...", type=_floats,
        help="contention axis in [0,1] (default: %(default)s)",
    )
    parser.add_argument(
        "--regions", default="2", metavar="N,N,...", type=_ints,
        help="regions axis (default: %(default)s)",
    )
    parser.add_argument(
        "--nesting", default="1", metavar="N,N,...", type=_ints,
        help="AR-nesting axis (default: %(default)s)",
    )
    parser.add_argument(
        "--read-fraction", default="0.25", metavar="F,F,...", type=_floats,
        help="read-only fraction axis (default: %(default)s)",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="record a replayable trace per kernel into <kernel>/trace/",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run every kernel (and recorded trace) through api.simulate "
             "with the online monitor armed",
    )
    cli.add_design_flag(parser, default="clear")
    cli.add_backend_flag(parser)
    parser.add_argument(
        "--cores", type=int, default=4, metavar="N",
        help="cores for --record/--check runs (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, metavar="S",
        help="seed for --record/--check runs (default: %(default)s)",
    )
    parser.add_argument(
        "--ops", type=int, default=8, metavar="N",
        help="ops per thread for --record/--check runs "
             "(default: %(default)s)",
    )
    return parser.parse_args(argv)


def build_specs(args):
    specs = []
    axes = itertools.product(
        args.footprints, args.mutability.split(","), args.contention,
        args.regions, args.nesting, args.read_fraction,
    )
    for footprint, mutability, contention, regions, nesting, read in axes:
        specs.append(GenSpec(
            regions=regions, footprint=footprint,
            mutability=mutability.strip(), contention=contention,
            read_fraction=read, nesting=nesting,
            hot_lines=max(8, footprint), private_lines=max(16, footprint),
        ))
    return specs


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    config = SimConfig(
        num_cores=args.cores, design=args.design, backend=args.backend,
    )
    check_config = config.replaced(oracle="online")
    try:
        specs = build_specs(args)
    except ConfigurationError as exc:
        print("bad spec axis: {}".format(exc), file=sys.stderr)
        return 2
    index = {}
    failures = 0
    for spec in specs:
        fingerprint = spec.fingerprint()
        folder = "{}/{}".format(args.out.rstrip("/"), fingerprint[:12])
        save_gen_spec(spec, folder)
        entry = {"folder": folder, "spec": spec.canonical()}
        name = "gen:" + spec.canonical()
        targets = [name]
        if args.record:
            trace_dir = "{}/trace".format(folder)
            manifest = record_trace(
                name, trace_dir, config=config, seed=args.seed,
                ops_per_thread=args.ops,
            )
            entry["trace"] = trace_dir
            entry["trace_digest"] = manifest["content_digest"]
            targets.append("trace:" + trace_dir)
        if args.check:
            for target in targets:
                try:
                    report = api.simulate(
                        target, check_config, seeds=args.seed,
                        ops_per_thread=args.ops,
                    )
                except ReproError as exc:
                    failures += 1
                    print("FAIL {}: {}".format(target, exc))
                    continue
                print("ok   {:60s} commits={:<5d} cycles={:,.0f}".format(
                    target[:60], report.stats.total_commits, report.cycles,
                ))
        index[fingerprint] = entry
    from repro.common.diskio import DiskIO

    DiskIO().write_atomic(
        "{}/corpus.json".format(args.out.rstrip("/")),
        json.dumps(index, indent=1, sort_keys=True).encode("utf-8"),
    )
    print("wrote {} kernel folder(s) under {} (index: corpus.json)".format(
        len(index), args.out,
    ))
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
