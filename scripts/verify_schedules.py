#!/usr/bin/env python3
"""Explore schedule spaces and verify every schedule against the oracles.

For each selected workload the script explores the same-cycle tie-break
schedule space (``--explore-mode random|pct|exhaustive``), checks the
serializability, single-retry-bound, and cross-schedule equivalence
oracles on every explored schedule, ddmin-shrinks any failure to a
minimal replayable artifact, and prints one summary line per workload.
Exit status is 1 when any schedule violated an oracle.

Failing artifacts are written to ``--artifact-dir`` as JSON; replay one
later with ``--replay ARTIFACT.json`` (the artifact pins the workload,
config, seed, and decision list, so replay is exact).

Fuzzing sweeps over many workloads fan out across the experiment
engine's process pool (``--jobs``); exhaustive exploration and replay
run inline.
"""

import os
import sys

from repro import cli
from repro.cli import argparse
from repro.verify import ScheduleArtifact, replay_artifact, verify
from repro.workloads import DATASTRUCTURE_NAMES

#: Small-footprint workloads whose micro configurations explore quickly.
DEFAULT_WORKLOADS = ("mwobject", "hashmap", "queue", "stack")


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "workloads", nargs="?", default=",".join(DEFAULT_WORKLOADS),
        metavar="A,B,...",
        help="comma-separated workloads, or 'all' for every data-structure "
             "benchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--config", default="baseline", metavar="DESIGN",
        help="HTM design name (legacy B/P/C/W letters still resolve; "
             "default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, metavar="S",
        help="workload seed (default: %(default)s)",
    )
    parser.add_argument(
        "--ops", type=int, default=4, metavar="N",
        help="ops per thread (default: %(default)s; keep tiny for "
             "exhaustive exploration)",
    )
    cli.add_explore_flags(parser)
    cli.add_engine_flags(parser)
    parser.add_argument(
        "--artifact-dir", default=".verify_artifacts", metavar="DIR",
        help="where failing-schedule artifacts are written "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--replay", metavar="ARTIFACT.json", default=None,
        help="replay a previously saved failing-schedule artifact and "
             "report whether it still violates (ignores workload "
             "selection and exploration flags)",
    )
    args = parser.parse_args(argv)
    cli.validate_explore_flags(parser, args)
    cli.validate_engine_flags(parser, args)
    if args.workloads == "all":
        args.workload_list = list(DATASTRUCTURE_NAMES)
    else:
        # Any namespace is explorable: built-ins, gen: specs, trace:
        # folders. Unknown names exit with a one-line message.
        args.workload_list = cli.resolve_workload_names(
            parser, args.workloads.split(",")
        )
    return args


def replay_one(path):
    """Replay a saved artifact; exit 0 if it reproduces its violations."""
    artifact = ScheduleArtifact.load(path)
    outcome = replay_artifact(artifact)
    expected = sorted({entry["kind"] for entry in artifact.violations})
    observed = sorted({entry["kind"] for entry in outcome.violations})
    print("replayed {}: {} decision(s), recorded kinds={}, observed "
          "kinds={}".format(path, len(artifact.decisions), expected,
                            observed))
    if observed == expected:
        print("replay reproduces the recorded violation kinds exactly")
        return 0
    if not observed:
        # The common benign case: the artifact captured a planted
        # (test-only) bug that the clean simulator does not have.
        print("replay is clean — the recorded failure does not reproduce "
              "on this build (fixed bug, or a test-only planted fault)")
        return 0
    print("replay DIVERGES from the recorded violations")
    return 1


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    if args.replay:
        return replay_one(args.replay)

    engine = None
    if args.explore_mode in ("random", "pct") and len(args.workload_list) > 1:
        engine = cli.build_engine(args)
    exhaustive = args.explore_mode == "exhaustive"
    failures = 0
    for name in args.workload_list:
        report = verify(
            name, args.config, cores=args.explore_cores, seed=args.seed,
            ops_per_thread=args.ops, explorer=args.explore_mode,
            schedules=args.explore, explore_seed=args.explore_seed,
            max_schedules=args.explore if exhaustive else None,
            engine=engine,
        )
        print(report.summary())
        if report.ok:
            continue
        failures += 1
        for artifact in report.artifacts:
            os.makedirs(args.artifact_dir, exist_ok=True)
            path = os.path.join(
                args.artifact_dir,
                "{}_{}_seed{}.json".format(name, args.config, args.seed),
            )
            artifact.save(path)
            print("  wrote minimized failing schedule to {} "
                  "({} decision(s)); replay with --replay {}".format(
                      path, len(artifact.decisions), path))
    if failures:
        print("{} of {} workload(s) violated an oracle".format(
            failures, len(args.workload_list)))
        return 1
    print("all {} workload(s) verified clean".format(len(args.workload_list)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
