#!/usr/bin/env python3
"""Line-coverage gate for the repro package.

Two ways to measure, one gate:

- **CI (pytest-cov)**: run ``pytest --cov=repro --cov-report=json`` and
  hand the JSON report to ``--report coverage.json``; the script
  compares its total percentage against the committed floor in
  ``tests/coverage_baseline.json`` and prints a per-module table.
- **Local (stdlib fallback)**: with no ``--report`` the script runs
  pytest in-process under a ``sys.settrace`` line collector restricted
  to ``src/repro`` — no third-party coverage dependency needed. Slower
  (roughly 5-10x a plain run) but measures the same quantity: executed
  source lines over possible source lines.

``--write-baseline`` re-measures and rewrites the committed floor:
the measured percentage rounded down, minus a 2-point tolerance for
the (small, systematic) difference between the two measurement methods
and for run-to-run churn in parallel/timeout tests. Exit status is 1
when coverage falls below the floor.
"""

import argparse
import dis
import json
import math
import os
import sys
import threading
import types

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO, "src", "repro")
BASELINE_PATH = os.path.join(REPO, "tests", "coverage_baseline.json")
#: Points subtracted from the measured floor when writing a baseline.
TOLERANCE = 2


class LineCollector:
    """sys.settrace collector for lines executed under ``src/repro``."""

    def __init__(self, root):
        self.root = root + os.sep
        self.executed = {}

    def trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self.root):
            return None  # never trace inside foreign code
        if event == "line":
            self.executed.setdefault(filename, set()).add(frame.f_lineno)
        return self.trace

    def install(self):
        threading.settrace(self.trace)
        sys.settrace(self.trace)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)


def possible_lines(path):
    """Every line that carries executable code in ``path``."""
    with open(path) as handle:
        code = compile(handle.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        code_object = stack.pop()
        lines.update(
            line for _, line in dis.findlinestarts(code_object)
            if line is not None
        )
        stack.extend(
            const for const in code_object.co_consts
            if isinstance(const, types.CodeType)
        )
    return lines


def source_files(root):
    found = []
    for directory, _, names in os.walk(root):
        if "__pycache__" in directory:
            continue
        found.extend(
            os.path.join(directory, name)
            for name in names if name.endswith(".py")
        )
    return sorted(found)


def measure(pytest_args):
    """Run pytest in-process under the collector; return per-file data."""
    import pytest

    collector = LineCollector(SRC_ROOT)
    collector.install()
    try:
        exit_code = pytest.main(["-x", "-q"] + list(pytest_args))
    finally:
        collector.uninstall()
    if exit_code != 0:
        print("pytest failed (exit {}); coverage not measured".format(
            exit_code))
        sys.exit(int(exit_code))
    per_file = {}
    for path in source_files(SRC_ROOT):
        possible = possible_lines(path)
        if not possible:
            continue
        executed = collector.executed.get(path, set()) & possible
        per_file[os.path.relpath(path, REPO)] = (len(executed), len(possible))
    return per_file


def totals(per_file):
    executed = sum(hit for hit, _ in per_file.values())
    possible = sum(total for _, total in per_file.values())
    return 100.0 * executed / possible if possible else 0.0


def module_table(per_file):
    """Aggregate per top-level repro submodule, worst-covered first."""
    modules = {}
    for path, (hit, total) in per_file.items():
        parts = path.split(os.sep)
        # src/repro/<module>/... or src/repro/<file>.py
        module = parts[2] if len(parts) > 3 else parts[2].replace(".py", "")
        have, need = modules.get(module, (0, 0))
        modules[module] = (have + hit, need + total)
    rows = sorted(
        modules.items(), key=lambda item: item[1][0] / item[1][1]
    )
    for module, (hit, total) in rows:
        print("  {:12s} {:6.1f}%  ({}/{} lines)".format(
            module, 100.0 * hit / total, hit, total))


def load_pytest_cov_report(path):
    """Per-file (hit, possible) from a pytest-cov ``--cov-report=json``."""
    with open(path) as handle:
        report = json.load(handle)
    per_file = {}
    for filename, data in report["files"].items():
        summary = data["summary"]
        per_file[filename] = (
            summary["covered_lines"], summary["num_statements"]
        )
    return per_file


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", metavar="coverage.json", default=None,
        help="check an existing pytest-cov JSON report instead of "
             "measuring with the stdlib fallback",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite {} from this measurement".format(
            os.path.relpath(BASELINE_PATH, REPO)),
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="extra pytest arguments for the fallback measurement "
             "(default: the tier-1 fast profile)",
    )
    args = parser.parse_args(argv)

    if args.report:
        per_file = load_pytest_cov_report(args.report)
        method = "pytest-cov"
    else:
        per_file = measure(args.pytest_args)
        method = "settrace"
    percent = totals(per_file)
    print("total line coverage: {:.2f}% ({})".format(percent, method))
    print("per-module:")
    module_table(per_file)

    if args.write_baseline:
        baseline = {
            "fail_under": max(0, math.floor(percent) - TOLERANCE),
            "measured_percent": round(percent, 2),
            "method": method,
            "note": "floor = floor(measured) - {} points of cross-method "
                    "and run-to-run tolerance; refresh with "
                    "scripts/coverage_gate.py --write-baseline".format(
                        TOLERANCE),
        }
        with open(BASELINE_PATH, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print("wrote baseline {} (fail_under={})".format(
            os.path.relpath(BASELINE_PATH, REPO), baseline["fail_under"]))
        return 0

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["fail_under"]
    if percent < floor:
        print("FAIL: coverage {:.2f}% fell below the committed floor of "
              "{}%".format(percent, floor))
        return 1
    print("OK: coverage {:.2f}% >= floor {}%".format(percent, floor))
    return 0


if __name__ == "__main__":
    sys.exit(main())
