#!/usr/bin/env python3
"""Regenerate the committed golden files, with a diff summary first.

The test suite pins two goldens:

- ``tests/goldens/figures_micro.json`` — the figure payload of the full
  micro experiment matrix (all benchmarks x B/P/C/W at 4 cores).
- ``tests/goldens/trace_micro.json`` — the exact event stream of one
  micro cell (genome/W/4c seed 1).
- ``tests/goldens/corpus_micro.json`` — the committed workload corpus
  (``tests/workloads/corpus/``: one generated kernel folder, one
  recorded trace) run through every registered design with the online
  serializability monitor armed, digests pinned per cell. The corpus
  folders themselves are fixed committed inputs; only the result
  digests are recomputed here.

Both must only ever change when simulated behaviour *intentionally*
changes. This script recomputes each golden, prints a summary of what
would change, and only overwrites with ``--apply`` — so an accidental
behaviour change reads as a scary diff instead of a silently rewritten
golden. Run it after any change that legitimately moves simulation
results, then commit the new goldens together with the change.
"""

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

GOLDEN_DIR = os.path.join(REPO, "tests", "goldens")


def compute_figures():
    from repro.analysis.experiments import (
        ExperimentSettings,
        figure_payload,
        run_config_matrix,
    )

    settings = ExperimentSettings.micro()
    matrix = run_config_matrix(settings)
    return json.loads(json.dumps(figure_payload(matrix)))


def compute_trace():
    from repro import api
    from repro.htm.design import design_name
    from repro.sim.config import SimConfig

    current = load(os.path.join(GOLDEN_DIR, "trace_micro.json"))
    # The pinned cell's identity (workload/config/seed) comes from the
    # existing golden; only the event stream is recomputed.
    report = api.simulate(
        current["workload"],
        SimConfig.for_design(design_name(current["config"]),
                             num_cores=current["num_cores"]),
        seeds=current["seed"], ops_per_thread=current["ops_per_thread"],
        trace=True,
    )
    refreshed = dict(current)
    refreshed["events"] = json.loads(json.dumps(report.trace.to_dicts()))
    return refreshed


def compute_corpus():
    import hashlib

    from repro import api
    from repro.htm.design import DESIGN_REGISTRY
    from repro.sim.config import SimConfig
    from repro.sim.machine import build_machine
    from repro.workloads import make_workload

    corpus = os.path.join(REPO, "tests", "workloads", "corpus")
    targets = {
        "gen": "gen:" + os.path.join(corpus, "kernel"),
        "trace": "trace:" + os.path.join(corpus, "trace"),
    }
    results = {}
    for label, name in sorted(targets.items()):
        per_design = {}
        for design in sorted(DESIGN_REGISTRY):
            config = SimConfig.for_design(design, num_cores=4,
                                          oracle="online")
            report = api.simulate(name, config, seeds=1, ops_per_thread=4)
            stats = report.runs[0].stats
            # api.simulate does not surface final memory; digest it from
            # a direct machine run of the same cell.
            machine = build_machine(
                config, make_workload(name, ops_per_thread=4), seed=1
            )
            machine.run()
            memory = machine.memory.snapshot()
            per_design[design] = {
                "commits": stats.total_commits,
                "cycles": stats.makespan_cycles,
                "stats_sha256": hashlib.sha256(json.dumps(
                    stats.to_dict(), sort_keys=True,
                    separators=(",", ":"),
                ).encode()).hexdigest(),
                "memory_sha256": hashlib.sha256(json.dumps(
                    sorted(memory.items()), separators=(",", ":"),
                ).encode()).hexdigest(),
            }
        results[label] = per_design
    return {
        "description": (
            "Committed corpus (tests/workloads/corpus/) through every "
            "design, online monitor armed; refresh with "
            "scripts/refresh_goldens.py --only corpus --apply"
        ),
        "num_cores": 4,
        "seed": 1,
        "ops_per_thread": 4,
        "results": results,
    }


def load(path):
    with open(path) as handle:
        return json.load(handle)


def summarize_diff(name, old, new):
    """Print what changed, one line per top-level key."""
    changed = []
    for key in sorted(set(old) | set(new)):
        if key not in old:
            changed.append("{}: ADDED".format(key))
        elif key not in new:
            changed.append("{}: REMOVED".format(key))
        elif old[key] != new[key]:
            if isinstance(old[key], list) and isinstance(new[key], list):
                changed.append("{}: {} -> {} entries, contents differ".format(
                    key, len(old[key]), len(new[key])))
            else:
                changed.append("{}: changed".format(key))
    if not changed:
        print("{}: unchanged".format(name))
        return False
    print("{}: {} top-level key(s) differ:".format(name, len(changed)))
    for line in changed:
        print("  " + line)
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apply", action="store_true",
        help="overwrite the goldens (default: dry run, diff summary only)",
    )
    parser.add_argument(
        "--only", choices=("figures", "trace", "corpus"), default=None,
        help="refresh just one golden",
    )
    args = parser.parse_args(argv)

    targets = []
    if args.only in (None, "figures"):
        targets.append(("figures_micro.json", compute_figures))
    if args.only in (None, "trace"):
        targets.append(("trace_micro.json", compute_trace))
    if args.only in (None, "corpus"):
        targets.append(("corpus_micro.json", compute_corpus))

    any_changed = False
    for name, compute in targets:
        path = os.path.join(GOLDEN_DIR, name)
        old = load(path)
        new = compute()
        if summarize_diff(name, old, new):
            any_changed = True
            if args.apply:
                with open(path, "w") as handle:
                    json.dump(new, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                print("  rewrote {}".format(os.path.relpath(path, REPO)))
    if any_changed and not args.apply:
        print("dry run: nothing written; re-run with --apply to overwrite")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
