#!/usr/bin/env python3
"""Cross-design evaluation matrix: every registered HTM design on every
workload.

Runs the full design zoo (``repro.htm.design.DESIGN_REGISTRY`` — the
paper's four modes plus the post-paper ``lrw`` and ``bigatomics``
backends) across all 19 workloads and writes two artifacts:

- ``BENCH_DESIGNS.json`` — the raw matrix (per-cell cycles, abort rate,
  commit-mode split, energy, design annotations), plus per-design
  summaries.
- ``DESIGNS.md`` — a rendered markdown grid: execution time normalized
  to the baseline design per workload, and a per-design summary table.

No plotting dependencies: the grid is JSON + markdown by construction,
so it runs (and diffs reviewably) anywhere the test suite runs.

Scales:

- ``micro`` (default): 4 cores, 6 ops/thread, seeds 1-2 — the committed
  artifacts and the CI smoke both use this, so regenerating is cheap.
- ``full``: 8 cores, 12 ops/thread, seeds 1-3.

Every cell runs with the invariant oracles armed; an oracle violation
in any design on any workload fails the whole benchmark.
"""

import json
import os
import sys
import time

from repro import api, cli
from repro.cli import argparse
from repro.core.modes import ExecMode
from repro.energy.model import EnergyModel
from repro.htm.abort import AbortReason
from repro.htm.design import DESIGN_REGISTRY
from repro.sim.config import SimConfig
from repro.workloads import ALL_NAMES

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_DESIGNS.json")
MARKDOWN_PATH = os.path.join(REPO_ROOT, "DESIGNS.md")

SCALES = {
    "micro": dict(cores=4, ops_per_thread=6, seeds=(1, 2)),
    "full": dict(cores=8, ops_per_thread=12, seeds=(1, 2, 3)),
}

#: Annotation counters worth surfacing in the summary, per design.
ANNOTATION_KEYS = ("multiword_commits",)


def measure_cell(workload, design, scale, engine, journal=None,
                 backend="reference"):
    """One workload x design cell: seed-averaged metrics as a dict."""
    config = SimConfig.for_design(
        design, num_cores=scale["cores"], oracle="shadow", backend=backend,
    )
    report = api.simulate(
        workload, config, seeds=scale["seeds"],
        ops_per_thread=scale["ops_per_thread"], trim=0, engine=engine,
        journal=journal,
    )
    model = EnergyModel()
    runs = report.runs
    energy = sum(model.evaluate(r.stats).total for r in runs) / len(runs)
    commits = sum(r.stats.total_commits for r in runs)
    fallback = sum(
        r.stats.commits_by_mode.get(ExecMode.FALLBACK, 0) for r in runs
    )
    annotations = {}
    for key in ANNOTATION_KEYS:
        total = sum(
            r.stats.design_annotations.get(key, 0) for r in runs
        )
        if total:
            annotations[key] = total
    capacity = sum(
        r.stats.aborts_by_reason.get(AbortReason.CAPACITY, 0) for r in runs
    )
    return {
        "workload": workload,
        "design": design,
        "cycles": report.cycles,
        "aborts_per_commit": round(report.aborts_per_commit, 4),
        "fallback_commit_share": round(fallback / commits, 4) if commits else 0.0,
        "capacity_aborts": capacity,
        "energy": round(energy, 1),
        "annotations": annotations,
    }


def geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def summarize(matrix, designs):
    """Per-design aggregates over the workload axis, baseline-relative."""
    summaries = {}
    for design in designs:
        cells = [matrix[workload][design] for workload in sorted(matrix)]
        relative = [
            cell["cycles"] / matrix[cell["workload"]]["baseline"]["cycles"]
            for cell in cells
        ]
        rel_energy = [
            cell["energy"] / matrix[cell["workload"]]["baseline"]["energy"]
            for cell in cells
        ]
        annotations = {}
        for cell in cells:
            for key, value in cell["annotations"].items():
                annotations[key] = annotations.get(key, 0) + value
        summaries[design] = {
            "letter": DESIGN_REGISTRY[design].letter,
            "geomean_relative_cycles": round(geomean(relative), 4),
            "geomean_relative_energy": round(geomean(rel_energy), 4),
            "mean_aborts_per_commit": round(
                sum(c["aborts_per_commit"] for c in cells) / len(cells), 4
            ),
            "mean_fallback_commit_share": round(
                sum(c["fallback_commit_share"] for c in cells) / len(cells), 4
            ),
            "total_capacity_aborts": sum(c["capacity_aborts"] for c in cells),
            "annotations": annotations,
        }
    return summaries


def render_markdown(payload):
    """The committed DESIGNS.md: normalized grid + summary table."""
    scale = payload["scale_params"]
    designs = payload["designs"]
    matrix = payload["matrix"]
    summaries = payload["summaries"]
    lines = [
        "# Cross-design evaluation matrix",
        "",
        "Generated by `scripts/bench_designs.py --scale {}` ({} cores, "
        "{} ops/thread, seeds {}). Every registered design ran every "
        "workload with the invariant oracles armed.".format(
            payload["scale"], scale["cores"], scale["ops_per_thread"],
            "/".join(str(s) for s in scale["seeds"]),
        ),
        "",
        "## Execution time (cycles, normalized to `baseline`)",
        "",
        "Lower is better; the `baseline` column shows raw cycles.",
        "",
        "| workload | " + " | ".join(
            "`{}`".format(d) for d in designs
        ) + " |",
        "|---" * (len(designs) + 1) + "|",
    ]
    for workload in sorted(matrix):
        row = matrix[workload]
        base = row["baseline"]["cycles"]
        cells = []
        for design in designs:
            if design == "baseline":
                cells.append("{:,.0f}".format(base))
            else:
                cells.append("{:.3f}".format(row[design]["cycles"] / base))
        lines.append(
            "| {} | ".format(workload) + " | ".join(cells) + " |"
        )
    lines += [
        "",
        "## Per-design summary (geomean over all {} workloads)".format(
            len(matrix)
        ),
        "",
        "| design | letter | rel. cycles | rel. energy | aborts/commit "
        "| fallback share | notes |",
        "|---|---|---|---|---|---|---|",
    ]
    for design in designs:
        summary = summaries[design]
        notes = []
        if summary["total_capacity_aborts"]:
            notes.append("{} capacity aborts".format(
                summary["total_capacity_aborts"]
            ))
        for key, value in sorted(summary["annotations"].items()):
            notes.append("{} {}".format(value, key.replace("_", " ")))
        lines.append(
            "| `{}` | {} | {:.3f} | {:.3f} | {:.3f} | {:.1%} | {} |".format(
                design, summary["letter"] or "—",
                summary["geomean_relative_cycles"],
                summary["geomean_relative_energy"],
                summary["mean_aborts_per_commit"],
                summary["mean_fallback_commit_share"],
                "; ".join(notes) or "—",
            )
        )
    lines += [
        "",
        "Letters B/P/C/W are the paper's four configurations; `lrw` and "
        "`bigatomics` are post-paper designs registered through the "
        "`repro.htm.design` protocol. Regenerate with "
        "`PYTHONPATH=src python scripts/bench_designs.py`.",
        "",
    ]
    return "\n".join(lines)


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_scale_flag(parser, sorted(SCALES), default="micro")
    cli.add_engine_flags(parser)
    cli.add_backend_flag(parser)
    cli.add_journal_flags(parser)
    parser.add_argument(
        "--designs", nargs="+", choices=sorted(DESIGN_REGISTRY),
        default=None, metavar="NAME",
        help="subset of designs to run (default: every registered design)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="subset of workloads to run: built-in names, "
             "gen:<spec|fingerprint|folder>, or trace:<folder> "
             "(default: all 19 built-ins)",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=JSON_PATH,
        help="matrix JSON path (default: repo BENCH_DESIGNS.json)",
    )
    parser.add_argument(
        "--markdown", metavar="OUT", default=MARKDOWN_PATH,
        help="rendered grid path (default: repo DESIGNS.md)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the summary only; write no artifacts",
    )
    args = parser.parse_args(argv)
    cli.validate_engine_flags(parser, args)
    cli.validate_journal_flags(parser, args)
    if args.designs is not None and "baseline" not in args.designs:
        parser.error("--designs must include baseline (the normalizer)")
    if args.workloads is not None:
        args.workloads = cli.resolve_workload_names(parser, args.workloads)
    return args


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    scale = SCALES[args.scale]
    designs = args.designs or sorted(DESIGN_REGISTRY)
    workloads = args.workloads or list(ALL_NAMES)
    engine = cli.build_engine(args)
    # One job folder journals the whole matrix: each api.simulate call
    # merges its cells into the manifest, so a killed benchmark run
    # resumed with --resume replays every completed cell.
    journal = cli.resolve_journal(args)
    started = time.time()
    matrix = {}
    for workload in workloads:
        row = {}
        for design in designs:
            row[design] = measure_cell(workload, design, scale, engine,
                                       journal=journal,
                                       backend=args.backend)
        matrix[workload] = row
        print("{:12s} ".format(workload) + "  ".join(
            "{}={:,}".format(design, row[design]["cycles"])
            for design in designs
        ))
    payload = {
        "schema_version": 1,
        "description": (
            "Cross-design evaluation matrix: every registered HTM design "
            "on every workload, oracle-checked, seed-averaged."
        ),
        "scale": args.scale,
        "backend": args.backend,
        "scale_params": {
            "cores": scale["cores"],
            "ops_per_thread": scale["ops_per_thread"],
            "seeds": list(scale["seeds"]),
        },
        "designs": designs,
        "matrix": matrix,
        "summaries": summarize(matrix, designs),
    }
    print("ran {} cells in {:.1f}s".format(
        len(workloads) * len(designs), time.time() - started
    ))
    for design in designs:
        summary = payload["summaries"][design]
        print("  {:14s} rel-cycles {:.3f}  rel-energy {:.3f}".format(
            design, summary["geomean_relative_cycles"],
            summary["geomean_relative_energy"],
        ))
    if args.no_write:
        return
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote {}".format(args.json))
    with open(args.markdown, "w") as handle:
        handle.write(render_markdown(payload))
    print("wrote {}".format(args.markdown))


if __name__ == "__main__":
    main()
