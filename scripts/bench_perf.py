#!/usr/bin/env python3
"""Measure simulator throughput on a pinned cell set; track BENCH_PERF.json.

The perf harness the hot-path work is graded against. It runs a fixed,
representative set of cells — one data-structure benchmark (hashmap),
one STAMP application (genome), and one high-contention pattern
(mwobject), each under the baseline (B) and CLEAR (C) configurations at
8 and 32 cores — and reports wall-seconds, event-loop pops
(``machine.event_count``), and events/second (best-of ``--reps``, so
one noisy rep cannot sandbag a cell).

Modes:

- default: measure the pinned cells and print a table. ``--json OUT``
  also dumps the measurement in the BENCH_PERF cell schema.
- ``--compare``: additionally print per-cell speedup against the last
  trajectory point recorded in BENCH_PERF.json.
- ``--record LABEL``: append a new trajectory point to BENCH_PERF.json,
  using the current measurement as "after" and ``--before FILE`` (a
  prior ``--json`` dump) as "before".
- ``--oracle MODE``: arm a serializability checker in every timed cell
  (``online`` measures the monitor's overhead against an oracle-off
  run of the same cells — event counts are unchanged by checking, so
  the speedup math stays valid).
- ``--scale micro`` (alias ``--micro``): shrink every cell to 4 cores /
  4 ops so CI can smoke the harness in seconds. Micro numbers are for
  plumbing checks only and are refused by ``--record``.
- ``--trace OUT.json`` / ``--trace-report OUT.txt``: run one extra,
  untimed traced rep of the headline cell and export it (Chrome/
  Perfetto trace and forensic abort report). The shared engine flags
  (``--jobs``/``--cache-dir``/``--no-cache``) apply to this auxiliary
  rep only — timed reps always run serially in-process, uncached, so
  wall-clock numbers stay meaningful.

Simulated results are deterministic, so ``events`` must match across
reps and across code changes; wall time is the only thing that moves.
"""

import json
import os
import sys
import time

from repro import api, cli
from repro.cli import argparse
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import make_workload

BENCH_PERF_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_PERF.json")

#: (workload, config letter, num_cores) — the pinned measurement cells.
CELLS = tuple(
    (workload, letter, cores)
    for workload in ("hashmap", "genome", "mwobject")
    for letter in ("B", "C")
    for cores in (8, 32)
)

OPS_PER_THREAD = 16
SEED = 1
HEADLINE_CELL = "genome/B/32c"

#: Sentinel for a bare ``--compare`` (diff against the newest point).
LAST_POINT = "@last"


def find_trajectory_point(book, point):
    """The trajectory point named ``point`` (or the newest for @last)."""
    trajectory = book.get("trajectory") or []
    if not trajectory:
        return None
    if point == LAST_POINT:
        return trajectory[-1]
    for entry in trajectory:
        if entry["label"] == point:
            return entry
    raise SystemExit(
        "no trajectory point {!r} in BENCH_PERF.json (have: {})".format(
            point, ", ".join(entry["label"] for entry in trajectory)
        )
    )


def cell_name(workload, letter, cores):
    return "{}/{}/{}c".format(workload, letter, cores)


def measure_cell(workload, letter, cores, ops_per_thread, reps,
                 backend="reference", oracle=None):
    """Best-of-``reps`` wall time for one cell; returns the cell dict."""
    config = SimConfig.for_design(
        design_name(letter), num_cores=cores, backend=backend,
        **({"oracle": oracle} if oracle is not None else {})
    )
    best_wall = None
    events = commits = aborts = None
    for _ in range(reps):
        machine = build_machine(
            config, make_workload(workload, ops_per_thread=ops_per_thread),
            seed=SEED,
        )
        started = time.perf_counter()
        stats = machine.run()
        wall = time.perf_counter() - started
        rep_events = machine.event_count
        if events is not None and rep_events != events:
            raise AssertionError(
                "non-deterministic event count for {}: {} vs {}".format(
                    cell_name(workload, letter, cores), rep_events, events
                )
            )
        events = rep_events
        commits = sum(stats.commits_by_mode.values())
        aborts = sum(stats.aborts_by_reason.values())
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "workload": workload,
        "config": letter,
        "num_cores": cores,
        "ops_per_thread": ops_per_thread,
        "seed": SEED,
        "backend": backend,
        **({"oracle": oracle} if oracle is not None else {}),
        "events": events,
        "wall_seconds": round(best_wall, 4),
        "events_per_second": round(events / best_wall, 1),
        "commits": commits,
        "aborts": aborts,
    }


def run_measurement(reps, ops_per_thread, cores_override=None, progress=print,
                    backend="reference", oracle=None):
    cells = {}
    for workload, letter, cores in CELLS:
        if cores_override is not None:
            cores = cores_override
        name = cell_name(workload, letter, cores)
        if name in cells:  # cores_override collapses the 8/32 pair
            continue
        cell = measure_cell(workload, letter, cores, ops_per_thread, reps,
                            backend=backend, oracle=oracle)
        cells[name] = cell
        progress(
            "{:18s} {:>9,} events  {:7.3f}s  {:>10,.1f} ev/s".format(
                name, cell["events"], cell["wall_seconds"],
                cell["events_per_second"],
            )
        )
    return {"cells": cells}


def speedups(before_cells, after_cells):
    """Per-cell events/sec ratio for cells present in both measurements."""
    ratios = {}
    for name, after in sorted(after_cells.items()):
        before = before_cells.get(name)
        if before is None:
            continue
        if before.get("events") != after.get("events"):
            raise AssertionError(
                "cell {} simulated differently before vs after "
                "({} vs {} events) — speedup would be meaningless".format(
                    name, before.get("events"), after.get("events")
                )
            )
        ratios[name] = round(
            after["events_per_second"] / before["events_per_second"], 2
        )
    return ratios


def record_trajectory(path, label, before, after, date):
    """Append a trajectory point to BENCH_PERF.json (creating it if new)."""
    if os.path.exists(path):
        with open(path) as handle:
            book = json.load(handle)
    else:
        book = {
            "schema_version": 1,
            "description": (
                "Throughput trajectory of the simulator hot path. Each "
                "trajectory point pins before/after measurements of the "
                "same deterministic cells (best-of-N wall time, identical "
                "event counts) around one performance PR."
            ),
            "headline_cell": HEADLINE_CELL,
            "cell_schema": {
                "events": "event-loop pops (machine.event_count; deterministic)",
                "wall_seconds": "best-of-reps wall time of Machine.run",
                "events_per_second": "events / wall_seconds",
            },
            "trajectory": [],
        }
    ratios = speedups(before["cells"], after["cells"])
    point = {
        "label": label,
        "date": date,
        "before": before["cells"],
        "after": after["cells"],
        "speedup": ratios,
        "headline_speedup": ratios.get(book.get("headline_cell", HEADLINE_CELL)),
    }
    book["trajectory"] = [
        existing for existing in book["trajectory"]
        if existing["label"] != label
    ] + [point]
    with open(path, "w") as handle:
        json.dump(book, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return point


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reps", type=int, default=3, metavar="N",
        help="repetitions per cell; best wall time wins (default: 3)",
    )
    cli.add_scale_flag(parser, ("full", "micro"), default="full")
    parser.add_argument(
        "--micro", action="store_true",
        help="CI smoke mode: 4 cores, 4 ops/thread (alias for "
             "--scale micro; not recordable)",
    )
    cli.add_engine_flags(parser)
    cli.add_trace_flags(parser)
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="dump the measurement as JSON (cell schema of BENCH_PERF.json)",
    )
    cli.add_backend_flag(parser)
    cli.add_oracle_flag(parser)
    parser.add_argument(
        "--compare", nargs="?", const=LAST_POINT, default=None,
        metavar="POINT",
        help="print speedups vs a trajectory point in BENCH_PERF.json "
             "(by label; bare --compare means the latest point)",
    )
    parser.add_argument(
        "--record", metavar="LABEL", default=None,
        help="append a trajectory point to BENCH_PERF.json (needs --before)",
    )
    parser.add_argument(
        "--before", metavar="FILE", default=None,
        help="prior --json dump used as the 'before' half of --record",
    )
    parser.add_argument(
        "--date", metavar="YYYY-MM-DD", default=None,
        help="date stamped on a --record point (default: today)",
    )
    parser.add_argument(
        "--bench-file", metavar="FILE", default=BENCH_PERF_PATH,
        help="trajectory book path (default: repo BENCH_PERF.json)",
    )
    args = parser.parse_args(argv)
    cli.validate_engine_flags(parser, args)
    if args.micro:
        args.scale = "micro"
    if args.reps < 1:
        parser.error("--reps must be >= 1")
    if args.record and not args.before:
        parser.error("--record requires --before FILE")
    if args.record and args.scale == "micro":
        parser.error("micro-scale measurements are not recordable")
    return args


def export_trace(args, micro):
    """One extra, untimed traced rep of the headline cell, exported.

    Goes through :func:`repro.api.simulate` with an engine built from
    the shared flags, so ``--jobs``/``--cache-dir`` behave exactly as in
    ``run_experiments.py``; wall-time measurement above is unaffected.
    """
    workload, letter, cores = "genome", "B", (4 if micro else 32)
    ops = 4 if micro else OPS_PER_THREAD
    report = api.simulate(
        workload, SimConfig.for_design(design_name(letter), num_cores=cores),
        seeds=SEED, ops_per_thread=ops, trace=True,
        engine=cli.build_engine(args),
    )
    print("traced {} seed={} ({} events)".format(
        cell_name(workload, letter, cores), SEED, len(report.trace)))
    if args.trace:
        report.write_chrome_trace(args.trace)
        print("wrote Chrome trace {} (load in Perfetto / chrome://tracing)"
              .format(args.trace))
    if args.trace_report:
        report.write_forensic_report(args.trace_report)
        print("wrote forensic report {}".format(args.trace_report))


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    micro = args.scale == "micro"
    ops = 4 if micro else OPS_PER_THREAD
    cores = 4 if micro else None
    started = time.time()
    measurement = run_measurement(args.reps, ops, cores_override=cores,
                                  backend=args.backend, oracle=args.oracle)
    print("measured {} cell(s) in {:.1f}s (best of {} rep(s), {} backend{})"
          .format(len(measurement["cells"]), time.time() - started,
                  args.reps, args.backend,
                  ", oracle={}".format(args.oracle) if args.oracle else ""))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(measurement, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(args.json))
    if args.compare is not None:
        with open(args.bench_file) as handle:
            book = json.load(handle)
        point = find_trajectory_point(book, args.compare)
        if point is None:
            print("no trajectory points in {}".format(args.bench_file))
        else:
            ratios = speedups(point["after"], measurement["cells"])
            print("vs trajectory point {!r}:".format(point["label"]))
            for name, ratio in sorted(ratios.items()):
                print("  {:18s} {:5.2f}x".format(name, ratio))
    if args.record:
        with open(args.before) as handle:
            before = json.load(handle)
        date = args.date or time.strftime("%Y-%m-%d")
        point = record_trajectory(
            args.bench_file, args.record, before, measurement, date)
        print("recorded {!r}: headline ({}) speedup {}x".format(
            point["label"], HEADLINE_CELL, point["headline_speedup"]))
    if cli.wants_trace(args):
        export_trace(args, micro)


if __name__ == "__main__":
    main()
