#!/usr/bin/env python3
"""Mini Figure 8: compare B / P / C / W across a few benchmarks.

Simulates a contended subset of the paper's benchmark suite under all
four evaluated configurations and prints execution time normalized to
the requester-wins baseline, exactly the series of the paper's Fig. 8.

Usage:  python examples/compare_configs.py [benchmark ...]
"""

import sys

from repro.analysis.experiments import (
    CONFIG_LETTERS,
    ExperimentSettings,
    fig8_execution_time,
    run_config_matrix,
)
from repro.analysis.report import render_table
from repro.workloads import ALL_NAMES

DEFAULT_BENCHMARKS = ("mwobject", "arrayswap", "queue", "intruder", "kmeans-h")


def main():
    benchmarks = tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS
    unknown = [name for name in benchmarks if name not in ALL_NAMES]
    if unknown:
        raise SystemExit("unknown benchmarks: {} (pick from {})".format(
            unknown, ", ".join(ALL_NAMES)))
    settings = ExperimentSettings(
        benchmarks=benchmarks, num_cores=8, ops_per_thread=12, seeds=(1, 2, 3)
    )
    print("simulating {} benchmarks x 4 configurations x {} seeds ...".format(
        len(benchmarks), len(settings.seeds)))
    matrix = run_config_matrix(settings)
    times, _ = fig8_execution_time(matrix)
    rows = [
        [name] + ["{:.2f}".format(times[name][letter]) for letter in CONFIG_LETTERS]
        for name in list(benchmarks) + ["geomean"]
    ]
    print()
    print(render_table(
        ["Benchmark", "B", "P", "C", "W"],
        rows,
        title="Execution time normalized to requester-wins (lower is better)",
    ))
    geomean = times["geomean"]
    print()
    print("CLEAR improves the geomean by {:.1%} over requester-wins (C vs B)".format(
        1 - geomean["C"]))
    print("and by {:.1%} when stacked on PowerTM (W vs B).".format(
        1 - geomean["W"]))


if __name__ == "__main__":
    main()
