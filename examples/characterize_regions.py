#!/usr/bin/env python3
"""Reproduce a Table 1 row: dynamic AR characterization.

Probes a benchmark's atomic regions the way CLEAR's discovery hardware
sees them — taint-tracking indirection bits plus footprint-stability
probes — and prints the per-region classification next to the class the
paper's Table 1 assigns.

Usage:  python examples/characterize_regions.py [benchmark]
"""

import sys

from repro.analysis.characterize import characterize_workload
from repro.analysis.report import render_table
from repro.workloads import ALL_NAMES, make_workload


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "sorted-list"
    if name not in ALL_NAMES:
        raise SystemExit("unknown benchmark {!r}; pick from {}".format(
            name, ", ".join(ALL_NAMES)))
    workload = make_workload(name)
    results = characterize_workload(
        lambda: make_workload(name, ops_per_thread=10),
        samples_per_region=10,
        perturbations=20,
    )
    rows = []
    for spec in workload.region_specs():
        characterization = results[spec.name]
        rows.append([
            spec.name,
            characterization.measured.value,
            spec.mutability.value,
            "{}/{}".format(
                characterization.footprint_changed_samples,
                characterization.samples,
            ),
            characterization.max_footprint,
        ])
    print(render_table(
        ["region", "measured", "declared (Table 1)", "footprint changed",
         "max lines"],
        rows,
        title="AR characterization for {!r}".format(name),
    ))


if __name__ == "__main__":
    main()
