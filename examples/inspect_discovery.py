#!/usr/bin/env python3
"""Look inside CLEAR: discovery decisions, ERT state, retry histogram.

Runs two contrasting benchmarks under CLEAR and dumps the hardware-level
view: what discovery concluded per region (the ERT bits), how commits
split across execution modes, and how many retries committed ARs needed
— the machinery behind the paper's Fig. 12 and Fig. 13.

Usage:  python examples/inspect_discovery.py
"""

from repro import Machine, SimConfig, make_workload
from repro.analysis.report import render_table


def inspect(name):
    config = SimConfig.for_design("clear", num_cores=8)
    workload = make_workload(name, ops_per_thread=15)
    machine = Machine(config, workload, seed=1)
    stats = machine.run()

    print("=" * 64)
    print("{}  ({} commits, {:.2f} aborts/commit)".format(
        name, stats.total_commits, stats.aborts_per_commit()))
    print("=" * 64)

    # ERT contents of core 0 — what the hardware learned per region.
    rows = []
    controller = machine.executors[0].controller
    for spec in workload.region_specs():
        entry = controller.ert.lookup(workload.region_id(spec.name))
        if entry is None:
            rows.append([spec.name, spec.mutability.value, "-", "-", "-"])
        else:
            rows.append([
                spec.name,
                spec.mutability.value,
                "yes" if entry.is_convertible else "no",
                "yes" if entry.is_immutable else "no",
                entry.sq_full_counter,
            ])
    print(render_table(
        ["region", "declared class", "convertible", "immutable", "SQ-full"],
        rows,
        title="Explored Region Table (core 0) after the run",
    ))

    print()
    print("commit modes:", {
        mode.value: count for mode, count in stats.commits_by_mode.items()
    })
    retried = {
        retries: count
        for retries, count in sorted(stats.commits_by_retries.items())
        if retries > 0
    }
    print("commits by retry count (non-fallback):", retried or "none retried")
    first, n_retry, fallback = stats.retry_shares()
    if first or n_retry or fallback:
        print("of retried ARs: {:.0%} first retry, {:.0%} more retries, "
              "{:.0%} fallback".format(first, n_retry, fallback))
    print()


def main():
    # mwobject: small immutable region -> NS-CL on retries.
    inspect("mwobject")
    # labyrinth: huge mutable footprints -> discovery disables itself.
    inspect("labyrinth")


if __name__ == "__main__":
    main()
