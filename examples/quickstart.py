#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the baseline HTM and CLEAR.

Runs the paper's most CLEAR-friendly benchmark (mwobject: four counters
in one cacheline, hammered by every core) under requester-wins (B) and
CLEAR over PowerTM (W), and prints what changed: execution time, abort
rate, and which execution modes committed.

Usage:  python examples/quickstart.py
"""

from repro import SimConfig, api
from repro.htm.design import design_name
from repro.core.modes import ExecMode


def describe(result):
    stats = result.stats
    modes = ", ".join(
        "{} {:.0%}".format(mode.value, share)
        for mode, share in sorted(
            stats.commit_mode_shares().items(), key=lambda item: -item[1]
        )
    )
    print("  cycles            : {:,}".format(stats.makespan_cycles))
    print("  commits           : {}".format(stats.total_commits))
    print("  aborts per commit : {:.2f}".format(stats.aborts_per_commit()))
    print("  energy (model)    : {:,.0f}".format(result.energy.total))
    print("  commit modes      : {}".format(modes))


def main():
    results = {}
    for letter in ("B", "W"):
        report = api.simulate(
            "mwobject", SimConfig.for_design(design_name(letter), num_cores=16),
            seeds=1, ops_per_thread=20,
        )
        result = report.run
        results[letter] = result
        label = {
            "B": "B - requester-wins baseline",
            "W": "W - CLEAR over PowerTM",
        }[letter]
        print(label)
        describe(result)
        print()

    speedup = results["B"].cycles / results["W"].cycles
    nscl = results["W"].stats.commits_by_mode.get(ExecMode.NS_CL, 0)
    print("CLEAR is {:.2f}x faster here; {} commits completed in the new".format(
        speedup, nscl))
    print("non-speculative cacheline-locked (NS-CL) mode, which guarantees")
    print("success on the first retry (paper section 4.3).")


if __name__ == "__main__":
    main()
