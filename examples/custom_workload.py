#!/usr/bin/env python3
"""Bring your own benchmark: a custom workload on the public API.

Defines a small "bank" workload from scratch — a transfer AR with a
pointer-table indirection (likely immutable, like the paper's bitcoin)
and an audit AR that walks an account list (mutable) — and runs it
under every configuration, checking the conservation-of-money invariant
each time.

This is the template for porting your own concurrent kernels onto the
simulator: subclass Workload, lay out memory in setup(), and express
each atomic region as a generator over Load/Store/Compute/Branch ops.

Usage:  python examples/custom_workload.py
"""

from repro import Machine, SimConfig
from repro.htm.design import design_name
from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload

NUM_ACCOUNTS = 32
INITIAL_BALANCE = 1_000


class BankWorkload(Workload):
    """Transfers between accounts plus a full-ledger audit."""

    name = "bank"

    def __init__(self, ops_per_thread=15):
        super().__init__(ops_per_thread=ops_per_thread, think_cycles=(30, 120))
        self.accounts_table = None  # pointer table (stable)
        self.accounts_base = None

    def region_specs(self):
        return [
            RegionSpec("transfer", Mutability.LIKELY_IMMUTABLE,
                       "move money through the account table"),
            RegionSpec("audit", Mutability.MUTABLE,
                       "sum all balances (footprint = whole ledger)"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.accounts_table = allocator.alloc(NUM_ACCOUNTS, align_line=True)
        self.accounts_base = allocator.alloc_lines(NUM_ACCOUNTS)
        for index in range(NUM_ACCOUNTS):
            account = self.accounts_base + index * WORDS_PER_LINE
            memory.poke(self.accounts_table + index, account)
            memory.poke(account, INITIAL_BALANCE)

    def make_invocation(self, thread_id, rng):
        if rng.random() < 0.8:
            source, target = rng.sample(range(NUM_ACCOUNTS), 2)
            amount = rng.randint(1, 50)
            return self.invoke(
                "transfer",
                self._transfer_body(source, target, amount),
            )
        return self.invoke("audit", self._audit_body())

    def _transfer_body(self, source, target, amount):
        table = self.accounts_table

        def body():
            account_from = yield Load(table + source)  # indirection
            account_to = yield Load(table + target)
            balance_from = yield Load(account_from)
            balance_to = yield Load(account_to)
            yield Store(account_from, balance_from - amount)
            yield Store(account_to, balance_to + amount)

        return body

    def _audit_body(self):
        table = self.accounts_table

        def body():
            total = 0
            for index in range(NUM_ACCOUNTS):
                account = yield Load(table + index)
                yield Branch(account)
                balance = yield Load(account)
                total = total + balance
            # Audits read the whole ledger; a real audit would report
            # `total`, which conservation says equals the initial sum.

        return body

    def total_money(self, memory):
        return sum(
            memory.peek(self.accounts_base + index * WORDS_PER_LINE)
            for index in range(NUM_ACCOUNTS)
        )


def main():
    expected = NUM_ACCOUNTS * INITIAL_BALANCE
    for letter in ("B", "P", "C", "W"):
        workload = BankWorkload()
        machine = Machine(SimConfig.for_design(design_name(letter), num_cores=8), workload, seed=2)
        stats = machine.run()
        total = workload.total_money(machine.memory)
        status = "OK " if total == expected else "LOST MONEY!"
        print("{}  cycles={:>8,}  aborts/commit={:5.2f}  total=${:,} [{}]".format(
            letter, stats.makespan_cycles, stats.aborts_per_commit(), total, status))
        assert total == expected, "atomicity violated"
    print()
    print("Every configuration conserved the ${:,} ledger.".format(expected))


if __name__ == "__main__":
    main()
