"""Figure 13 — Commit breakdown per number of retries (0-retry excluded).

Regenerates the paper's bounding result: among ARs that needed at least
one retry, the share committing on exactly the first retry, after more
retries, and in fallback. Paper averages:

====== ============ ==========
config first retry  fallback
====== ============ ==========
B        35.4%        37.2%
P        46.4%        27.4%
C        64.2%        15.5%
W        64.4%        15.4%
====== ============ ==========
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig13_retry_bound
from repro.analysis.report import render_table

PAPER_AVERAGES = {
    "B": (0.354, 0.372),
    "P": (0.464, 0.274),
    "C": (0.642, 0.155),
    "W": (0.644, 0.154),
}


def test_fig13_retry_bound(benchmark, matrix):
    rows_data = benchmark.pedantic(
        fig13_retry_bound, args=(matrix,), rounds=1, iterations=1
    )
    rows = []
    for name, per_config in rows_data.items():
        for letter in CONFIG_LETTERS:
            first, n_retry, fallback = per_config[letter]
            rows.append(
                [
                    name if letter == "B" else "",
                    letter,
                    "{:.1%}".format(first),
                    "{:.1%}".format(n_retry),
                    "{:.1%}".format(fallback),
                ]
            )
    print()
    print(
        render_table(
            ["Benchmark", "cfg", "1-retry", "n-retry", "fallback"],
            rows,
            title="Fig. 13: commit breakdown per number of retries "
                  "(commits at 0 retries excluded)",
        )
    )
    average = rows_data["average"]
    print(
        "average 1-retry: "
        + " ".join(
            "{}={:.1%} (paper {:.1%})".format(
                letter, average[letter][0], PAPER_AVERAGES[letter][0]
            )
            for letter in CONFIG_LETTERS
        )
    )
    print(
        "average fallback: "
        + " ".join(
            "{}={:.1%} (paper {:.1%})".format(
                letter, average[letter][2], PAPER_AVERAGES[letter][1]
            )
            for letter in CONFIG_LETTERS
        )
    )
    # The headline shape: CLEAR raises the first-retry share well above
    # its baseline and cuts the fallback share.
    assert average["C"][0] > average["B"][0]
    assert average["W"][0] > average["P"][0]
    assert average["C"][2] < average["B"][2]
    assert average["W"][2] < average["P"][2]
    # And the bound is effective: most retried CLEAR ARs finish on the
    # first retry.
    assert average["C"][0] > 0.5
    assert average["W"][0] > 0.5
