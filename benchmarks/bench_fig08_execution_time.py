"""Figure 8 — Normalized execution time.

Regenerates the paper's main result: per-benchmark execution time for
the four configurations (B = requester-wins, P = PowerTM, C = CLEAR
over requester-wins, W = CLEAR over PowerTM), normalized to B, plus the
overlay of time spent running aborted-in-discovery and the geomean row.

Paper headlines: PowerTM improves 12.7% over B; CLEAR improves 27.4%
(C) and 35.0% (W) on average; discovery overhead stays under ~3.5%.
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig8_execution_time
from repro.analysis.report import render_table


def test_fig08_execution_time(benchmark, matrix):
    times, discovery = benchmark.pedantic(
        fig8_execution_time, args=(matrix,), rounds=1, iterations=1
    )
    rows = []
    for name, per_config in times.items():
        disc = discovery.get(name, {})
        rows.append(
            [name]
            + ["{:.2f}".format(per_config[letter]) for letter in CONFIG_LETTERS]
            + ["{:.1%}".format(disc.get("C", 0.0)) if disc else "-"]
        )
    print()
    print(
        render_table(
            ["Benchmark", "B", "P", "C", "W", "discovery(C)"],
            rows,
            title="Fig. 8: execution time normalized to requester-wins",
        )
    )
    geomean = times["geomean"]
    print(
        "geomean: P {:.1%} | C {:.1%} | W {:.1%} faster than B".format(
            1 - geomean["P"], 1 - geomean["C"], 1 - geomean["W"]
        )
    )
    # Shape assertions (who wins): both CLEAR configurations beat the
    # baseline on average, and CLEAR beats plain PowerTM.
    assert geomean["B"] == 1.0
    assert geomean["C"] < 1.0
    assert geomean["W"] < 1.0
    assert geomean["W"] < geomean["P"]
    # Discovery overhead stays small on average (paper: usually <1%,
    # peaking at 3.4% for intruder).
    mean_discovery = sum(
        discovery[name]["C"] for name in discovery
    ) / max(1, len(discovery))
    assert mean_discovery < 0.15
