"""The abstract's headline numbers, regenerated in one place.

Paper (abstract + §7): first-retry success 35.4% -> 64.4%; fallback
share 37.2% -> 15.4%; execution time -35.0% (W vs B) and -23.3% (W vs
P); aborts/commit 7.9 -> 1.6; energy -26.4% (C) / -30.6% (W).
"""

from repro.analysis.experiments import headline_summary
from repro.analysis.report import render_table

PAPER = {
    "time_reduction_W_vs_B": 0.350,
    "time_reduction_C_vs_B": 0.274,
    "time_reduction_W_vs_P": 0.233,
    "energy_reduction_C_vs_B": 0.264,
    "energy_reduction_W_vs_B": 0.306,
    "aborts_per_commit_B": 7.9,
    "aborts_per_commit_C": 1.6,
    "aborts_per_commit_W": 2.3,
    "first_retry_share_B": 0.354,
    "first_retry_share_P": 0.464,
    "first_retry_share_C": 0.642,
    "first_retry_share_W": 0.644,
    "fallback_share_B": 0.372,
    "fallback_share_C": 0.155,
    "fallback_share_W": 0.154,
}


def test_headline_summary(benchmark, matrix):
    summary = benchmark.pedantic(
        headline_summary, args=(matrix,), rounds=1, iterations=1
    )
    rows = []
    for key in sorted(summary):
        measured = summary[key]
        reference = PAPER.get(key)
        rows.append(
            [
                key,
                "{:.3f}".format(measured),
                "{:.3f}".format(reference) if reference is not None else "-",
            ]
        )
    print()
    print(render_table(["metric", "measured", "paper"], rows,
                       title="Headline metrics (paper abstract / §7)"))
    # Directional claims that define the paper's contribution.
    assert summary["time_reduction_C_vs_B"] > 0
    assert summary["time_reduction_W_vs_B"] > 0
    assert summary["energy_reduction_C_vs_B"] > 0
    assert summary["aborts_per_commit_C"] < summary["aborts_per_commit_B"]
    assert summary["first_retry_share_C"] > summary["first_retry_share_B"]
    assert summary["first_retry_share_W"] > summary["first_retry_share_P"]
    assert summary["fallback_share_C"] < summary["fallback_share_B"]
    assert summary["fallback_share_W"] < summary["fallback_share_B"]
