"""Ablations of CLEAR's design choices (DESIGN.md §4, paper §4-5).

Four studies, each isolating one mechanism the paper argues for:

1. **Failed-mode discovery** (§4.1): continue discovering after a
   conflict versus aborting immediately and deciding from partial
   information.
2. **S-CL lock policy** (§4.4.2): lock only the write set plus
   previously conflicting reads (the paper's choice) versus locking
   every accessed address.
3. **CRT** (§5): with the Conflicting Reads Table disabled, an S-CL
   retry cannot protect a previously conflicting read.
4. **Retry-threshold design space** (§6): the paper's best-of-1..10
   retry selection, shown per benchmark.
5. **Speculation substrate** (§4.1 vs §4.2): in-core (SLE, ROB/LQ/SQ
   bounded) versus out-of-core (HTM) speculation — small-region
   benchmarks are indifferent, wide STAMP regions need HTM.
"""

from repro import api
from repro.analysis.report import render_table
from repro.sim.config import SimConfig

SEEDS = (1, 2, 3)
CORES = 8
OPS = 12


def run(name, **overrides):
    config = SimConfig.for_design("clear", num_cores=CORES, **overrides)
    return api.run_seeds(
        name, config, seeds=SEEDS, trim=0, ops_per_thread=OPS
    )


BENCHMARKS = ("mwobject", "arrayswap", "queue", "bitcoin", "intruder", "bst")


def test_ablation_failed_mode_discovery(benchmark):
    def study():
        rows = {}
        for name in BENCHMARKS:
            with_failed = run(name, failed_mode_discovery=True)
            without = run(name, failed_mode_discovery=False)
            rows[name] = (with_failed, without)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    printable = [
        [
            name,
            "{:.2f}".format(with_failed.aborts_per_commit),
            "{:.2f}".format(without.aborts_per_commit),
            "{:,}".format(int(with_failed.cycles)),
            "{:,}".format(int(without.cycles)),
        ]
        for name, (with_failed, without) in rows.items()
    ]
    print()
    print(render_table(
        ["Benchmark", "a/c failed-mode", "a/c immediate", "cycles failed-mode",
         "cycles immediate"],
        printable,
        title="Ablation 1: failed-mode discovery vs immediate abort",
    ))
    # Failed mode must not be catastrophically worse anywhere, and the
    # complete-information decisions should win on aborts overall.
    total_with = sum(pair[0].aborts_per_commit for pair in rows.values())
    total_without = sum(pair[1].aborts_per_commit for pair in rows.values())
    assert total_with <= total_without * 1.3


def test_ablation_scl_lock_policy(benchmark):
    scl_benchmarks = ("bitcoin", "queue", "stack", "deque", "intruder")

    def study():
        rows = {}
        for name in scl_benchmarks:
            writes = run(name, scl_lock_policy="writes")
            lock_all = run(name, scl_lock_policy="all")
            rows[name] = (writes, lock_all)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    printable = [
        [
            name,
            "{:,}".format(int(writes.cycles)),
            "{:,}".format(int(lock_all.cycles)),
            "{:.2f}".format(writes.aborts_per_commit),
            "{:.2f}".format(lock_all.aborts_per_commit),
        ]
        for name, (writes, lock_all) in rows.items()
    ]
    print()
    print(render_table(
        ["Benchmark", "cycles writes", "cycles all", "a/c writes", "a/c all"],
        printable,
        title="Ablation 2: S-CL locks write-set+CRT vs all addresses",
    ))
    for name, (writes, lock_all) in rows.items():
        assert writes.cycles > 0 and lock_all.cycles > 0


def test_ablation_crt(benchmark):
    crt_benchmarks = ("bitcoin", "queue", "deque", "vacation-h")

    def study():
        rows = {}
        for name in crt_benchmarks:
            enabled = run(name, crt_enabled=True)
            disabled = run(name, crt_enabled=False)
            rows[name] = (enabled, disabled)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    printable = [
        [
            name,
            "{:.2f}".format(enabled.aborts_per_commit),
            "{:.2f}".format(disabled.aborts_per_commit),
        ]
        for name, (enabled, disabled) in rows.items()
    ]
    print()
    print(render_table(
        ["Benchmark", "a/c CRT on", "a/c CRT off"],
        printable,
        title="Ablation 3: Conflicting Reads Table on/off",
    ))
    for name, (enabled, disabled) in rows.items():
        assert enabled.cycles > 0 and disabled.cycles > 0


def test_ablation_retry_threshold(benchmark):
    thresholds = (1, 2, 4, 6, 8, 10)
    names = ("mwobject", "queue", "labyrinth")

    def study():
        table = {}
        for name in names:
            table[name] = {
                threshold: api.run_seeds(
                    name,
                    SimConfig.for_design("baseline", num_cores=CORES,
                                         retry_threshold=threshold),
                    seeds=SEEDS, trim=0, ops_per_thread=OPS,
                ).cycles
                for threshold in thresholds
            }
        return table

    table = benchmark.pedantic(study, rounds=1, iterations=1)
    printable = []
    for name, per_threshold in table.items():
        best = min(per_threshold, key=per_threshold.get)
        printable.append(
            [name]
            + ["{:,}".format(int(per_threshold[t])) for t in thresholds]
            + [best]
        )
    print()
    print(render_table(
        ["Benchmark"] + ["r={}".format(t) for t in thresholds] + ["best"],
        printable,
        title="Ablation 4: retry-threshold design space (baseline B cycles)",
    ))
    # The sweep must produce an actual optimum (not always the extreme).
    for name, per_threshold in table.items():
        assert min(per_threshold.values()) > 0


def test_ablation_speculation_substrate(benchmark):
    from repro.core.modes import ExecMode
    from repro.htm.abort import AbortReason

    names = ("mwobject", "queue", "labyrinth", "yada")

    def study():
        rows = {}
        for name in names:
            htm = run(name, speculation="htm")
            sle = run(name, speculation="sle")
            # The in-core window again with a narrow store queue, to
            # show where the ROB/SQ bound starts to bite.
            sle_narrow = run(name, speculation="sle", sq_entries=20)
            rows[name] = (htm, sle, sle_narrow)
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)

    def fallback_share(aggregate):
        return aggregate.commit_mode_shares().get(ExecMode.FALLBACK, 0.0)

    printable = []
    for name, (htm, sle, sle_narrow) in rows.items():
        printable.append([
            name,
            "{:,}".format(int(htm.cycles)),
            "{:,}".format(int(sle.cycles)),
            "{:,}".format(int(sle_narrow.cycles)),
            "{:.0%}".format(fallback_share(htm)),
            "{:.0%}".format(fallback_share(sle_narrow)),
        ])
    print()
    print(render_table(
        ["Benchmark", "HTM", "SLE (SQ=72)", "SLE (SQ=20)",
         "fallback HTM", "fallback SLE-20"],
        printable,
        title="Ablation 5: speculation substrate and window size",
    ))
    # Small-footprint regions are indifferent to the substrate with the
    # Table 2 window.
    htm, sle, _ = rows["mwobject"]
    assert htm.cycles == sle.cycles
    # A narrow store queue pushes wide STAMP regions into SQ-overflow
    # aborts; small-region benchmarks stay clear of the bound.
    _, _, narrow_labyrinth = rows["labyrinth"]
    overflowed = sum(
        run_result.stats.aborts_by_reason.get(AbortReason.SQ_OVERFLOW, 0)
        for run_result in narrow_labyrinth.runs
    )
    assert overflowed > 0
    _, _, narrow_mwobject = rows["mwobject"]
    clean = sum(
        run_result.stats.aborts_by_reason.get(AbortReason.SQ_OVERFLOW, 0)
        for run_result in narrow_mwobject.runs
    )
    assert clean == 0
