"""Figure 1 — ARs that do not change their accessed cachelines on the
first retry.

Regenerates the paper's motivation figure: for each benchmark, the
runtime ratio of retried ARs whose footprint (i) stayed below the
32-cacheline tracking limit and (ii) was identical on the first retry.
Measured on the baseline (B) configuration, as in the paper; the paper
reports a 60.2% average across benchmarks that retry.
"""

from repro.analysis.experiments import fig1_retry_immutability
from repro.analysis.report import render_bar_chart

PAPER_AVERAGE = 0.602


def test_fig01_retry_immutability(benchmark, matrix):
    ratios = benchmark.pedantic(
        fig1_retry_immutability, args=(matrix,), rounds=1, iterations=1
    )
    print()
    print(
        render_bar_chart(
            ratios,
            title="Fig. 1: ratio of retrying ARs with small immutable footprints "
                  "(paper avg {:.1%})".format(PAPER_AVERAGE),
        )
    )
    assert all(0.0 <= ratio <= 1.0 for ratio in ratios.values())
    # Benchmarks built from pre-computed addresses must be (nearly)
    # fully stable on retries; pointer-chasing ones must not be.
    contended_immutable = [
        name for name in ("arrayswap", "mwobject") if ratios.get(name, 0) > 0
    ]
    for name in contended_immutable:
        assert ratios[name] > 0.9, name
    # The average must land in the paper's ballpark: a majority of
    # retrying ARs are small and immutable, but clearly not all.
    assert 0.30 <= ratios["average"] <= 0.90
