"""Figure 9 — Aborts per committed transaction.

Regenerates the per-benchmark aborts-per-commit bars for B/P/C/W plus
the average row. Paper headlines: baseline 7.9 aborts per commit,
PowerTM 6.6, CLEAR-over-requester-wins 1.6, CLEAR-over-PowerTM 2.3.
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig9_aborts_per_commit
from repro.analysis.report import render_table


def test_fig09_aborts_per_commit(benchmark, matrix):
    rows_data = benchmark.pedantic(
        fig9_aborts_per_commit, args=(matrix,), rounds=1, iterations=1
    )
    rows = [
        [name] + ["{:.2f}".format(per_config[letter]) for letter in CONFIG_LETTERS]
        for name, per_config in rows_data.items()
    ]
    print()
    print(
        render_table(
            ["Benchmark", "B", "P", "C", "W"],
            rows,
            title="Fig. 9: aborts per committed transaction",
        )
    )
    average = rows_data["average"]
    # Shape: CLEAR slashes the abort rate relative to its own baseline
    # (the paper reports 7.9 -> 1.6 and 6.6 -> 2.3).
    assert average["C"] < average["B"] * 0.6
    assert average["W"] < average["P"]
    assert all(value >= 0 for value in average.values())
