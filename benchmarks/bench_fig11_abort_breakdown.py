"""Figure 11 — Abort breakdown per type.

Regenerates the stacked abort-share bars: Memory Conflict / Explicit
Fallback / Other Fallback / Others, per benchmark and configuration.
The paper's qualitative claim: with CLEAR, the expensive fallback-class
aborts shrink because far fewer ARs reach the fallback path.
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig11_abort_breakdown
from repro.analysis.report import render_stacked_shares
from repro.htm.abort import AbortCategory

CATEGORIES = [
    AbortCategory.MEMORY_CONFLICT,
    AbortCategory.EXPLICIT_FALLBACK,
    AbortCategory.OTHER_FALLBACK,
    AbortCategory.OTHERS,
]


def test_fig11_abort_breakdown(benchmark, matrix):
    rows_data = benchmark.pedantic(
        fig11_abort_breakdown, args=(matrix,), rounds=1, iterations=1
    )
    print()
    display = []
    for name, per_config in rows_data.items():
        for letter in CONFIG_LETTERS:
            display.append(
                (
                    "{:12s} {}".format(name, letter),
                    {cat.value: share for cat, share in per_config[letter].items()},
                )
            )
    print(
        render_stacked_shares(
            display,
            [category.value for category in CATEGORIES],
            title="Fig. 11: abort breakdown per type "
                  "(# = MemConflict, = = ExplicitFallback, + = OtherFallback, . = Others)",
        )
    )
    # Every per-cell breakdown is a distribution (or empty when a
    # configuration never aborts).
    for per_config in rows_data.values():
        for shares in per_config.values():
            total = sum(shares.values())
            assert total == 0.0 or abs(total - 1.0) < 1e-6
    # Aggregate fallback-class abort share must shrink under CLEAR.
    def fallback_share(letter):
        shares = [
            per_config[letter].get(AbortCategory.EXPLICIT_FALLBACK, 0.0)
            + per_config[letter].get(AbortCategory.OTHER_FALLBACK, 0.0)
            for per_config in rows_data.values()
        ]
        return sum(shares) / len(shares)

    assert fallback_share("C") <= fallback_share("B") + 0.05
