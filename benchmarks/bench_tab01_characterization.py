"""Table 1 — Characterization of ARs.

Regenerates the paper's Table 1: for every benchmark, the number of
static ARs executed and their measured mutability split (immutable /
likely immutable / mutable), derived dynamically by the characterizer
(taint probes + footprint-stability probes), next to the declared
classes for comparison.
"""

from repro.analysis.characterize import characterization_table
from repro.analysis.report import render_table
from repro.workloads import ALL_NAMES, make_workload
from repro.workloads.base import Mutability

# Paper Table 1 reference values: (#ARs, immutable, likely, mutable).
PAPER_TABLE_1 = {
    "arrayswap": (2, 2, 0, 0),
    "bitcoin": (1, 0, 1, 0),
    "bst": (3, 0, 0, 3),
    "deque": (2, 0, 1, 1),
    "hashmap": (3, 0, 0, 3),
    "mwobject": (1, 1, 0, 0),
    "queue": (2, 0, 1, 1),
    "stack": (2, 0, 1, 1),
    "sorted-list": (3, 1, 0, 2),
    "bayes": (14, 0, 5, 9),
    "genome": (5, 0, 0, 5),
    "intruder": (3, 0, 2, 1),
    "kmeans-h": (3, 1, 2, 0),
    "kmeans-l": (3, 1, 2, 0),
    "labyrinth": (3, 0, 0, 3),
    "ssca2": (3, 2, 1, 0),
    "vacation-h": (3, 0, 1, 2),
    "vacation-l": (3, 0, 1, 2),
    "yada": (6, 1, 0, 5),
}


def build_table():
    factories = [
        (lambda name=name: make_workload(name, ops_per_thread=10))
        for name in ALL_NAMES
    ]
    return characterization_table(
        factories, samples_per_region=10, perturbations=20
    )


def test_table1_characterization(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    printable = []
    matches = 0
    for row in rows:
        paper = PAPER_TABLE_1[row["benchmark"]]
        measured = (
            row["num_ars"],
            row["immutable"],
            row["likely_immutable"],
            row["mutable"],
        )
        if measured == paper:
            matches += 1
        printable.append(
            [
                row["benchmark"],
                row["num_ars"],
                row["immutable"],
                row["likely_immutable"],
                row["mutable"],
                "{}/{}/{}".format(paper[1], paper[2], paper[3]),
            ]
        )
    print()
    print(
        render_table(
            ["Benchmark", "# of ARs", "Immutable", "Likely imm.", "Mutable",
             "(paper i/l/m)"],
            printable,
            title="Table 1: Characterization of ARs (measured vs paper)",
        )
    )
    print("rows matching the paper exactly: {}/{}".format(matches, len(rows)))
    # Structural checks: the AR counts must match the paper exactly, and
    # the taint-derived immutable column must never exceed the declared
    # immutable+likely pool.
    for row in rows:
        paper = PAPER_TABLE_1[row["benchmark"]]
        assert row["num_ars"] == paper[0], row["benchmark"]
        assert row["immutable"] + row["likely_immutable"] + row["mutable"] == paper[0]
    # The immutable column is deterministic (taint only): exact match.
    for row in rows:
        assert row["immutable"] == PAPER_TABLE_1[row["benchmark"]][1], row["benchmark"]
    # The likely/mutable split is probe-based; at this probe strength it
    # reproduces the paper exactly, but allow a small stochastic margin.
    assert matches >= 17
