"""Shared infrastructure for the figure-regeneration benchmarks.

Every figure projects the same (benchmark x configuration) matrix, so
the matrix is simulated once per pytest session and cached.

Scale is selected with the ``REPRO_BENCH_SCALE`` environment variable:

- ``quick`` (default): 8 cores, 3 seeds, fixed retry threshold — every
  figure regenerates in a couple of minutes on a laptop.
- ``paper``: 32 cores, 10 seeds, trimmed mean removing 3 outliers, and
  the per-application best-of-1..10 retry sweep, as in the paper's
  methodology (§6). Expect hours.
"""

import os

import pytest

from repro.analysis.experiments import ExperimentSettings, run_config_matrix


def bench_settings():
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale == "paper":
        return ExperimentSettings.paper()
    return ExperimentSettings(
        num_cores=8,
        ops_per_thread=10,
        seeds=(1, 2, 3),
        trim=0,
    )


@pytest.fixture(scope="session")
def settings():
    return bench_settings()


@pytest.fixture(scope="session")
def matrix(settings):
    """The full simulation matrix, built once per session."""
    return run_config_matrix(settings)
