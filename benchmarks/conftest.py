"""Shared infrastructure for the figure-regeneration benchmarks.

Every figure projects the same (benchmark x configuration) matrix, so
the matrix is simulated once per pytest session and cached. The build
goes through the experiment engine, so it fans out over worker
processes and can memoize cells on disk.

Environment knobs:

- ``REPRO_BENCH_SCALE``: ``quick`` (default; 8 cores, 3 seeds, fixed
  retry threshold — every figure regenerates in a couple of minutes on
  a laptop) or ``paper`` (32 cores, 10 seeds, trimmed mean removing 3
  outliers, and the per-application best-of-1..10 retry sweep, as in
  the paper's methodology (§6); hours serially).
- ``REPRO_BENCH_JOBS``: worker processes for the matrix build
  (default: all cores; ``1`` forces the serial path).
- ``REPRO_BENCH_CACHE_DIR``: enables the on-disk result cache at the
  given root (default: disabled, so benchmark runs stay hermetic).
"""

import os

import pytest

from repro.analysis.experiments import ExperimentSettings, run_config_matrix


def bench_settings():
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale == "paper":
        return ExperimentSettings.paper()
    return ExperimentSettings(
        num_cores=8,
        ops_per_thread=10,
        seeds=(1, 2, 3),
        trim=0,
    )


def bench_jobs():
    return int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)


@pytest.fixture(scope="session")
def settings():
    return bench_settings()


@pytest.fixture(scope="session")
def matrix(settings):
    """The full simulation matrix, built once per session via the engine."""
    return run_config_matrix(
        settings,
        jobs=bench_jobs(),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR") or None,
    )
