"""§5 storage claim — CLEAR's per-core hardware overhead.

The paper sizes the added structures (indirection bits, ERT, ALT, CRT)
and claims "The total storage overhead is less than 1KiB (988.5
bytes)". This harness recomputes the sizing from the Table 2
configuration and sweeps the table-size ablations.
"""

from repro.analysis.report import render_table
from repro.analysis.storage import storage_overhead
from repro.sim.config import SimConfig


def test_storage_overhead(benchmark):
    overhead = benchmark.pedantic(
        storage_overhead, args=(SimConfig(),), rounds=1, iterations=1
    )
    rows = [(name, "{:.1f} B".format(size)) for name, size in overhead.rows()]
    print()
    print(render_table(["structure", "size"], rows,
                       title="CLEAR per-core storage overhead (paper §5)"))
    sweep = []
    for alt_entries in (8, 16, 32, 64):
        config = SimConfig(alt_entries=alt_entries)
        sweep.append(
            (alt_entries, "{:.1f} B".format(storage_overhead(config).total_bytes))
        )
    print()
    print(render_table(["ALT entries", "total"], sweep,
                       title="Total overhead vs ALT size"))
    assert overhead.total_bytes == 988.5  # the paper's exact number
    assert overhead.total_bytes < 1024
