"""Figure 10 — Normalized energy consumption.

Regenerates the per-benchmark energy bars for B/P/C/W, normalized to B,
with the geomean row. Paper headlines: CLEAR reduces energy by 26.4%
over requester-wins and 30.6% when combined with PowerTM; the savings
come from shorter runtime (static) and fewer re-executed instructions
(dynamic).
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig10_energy
from repro.analysis.report import render_table


def test_fig10_energy(benchmark, matrix):
    rows_data = benchmark.pedantic(
        fig10_energy, args=(matrix,), rounds=1, iterations=1
    )
    rows = [
        [name] + ["{:.2f}".format(per_config[letter]) for letter in CONFIG_LETTERS]
        for name, per_config in rows_data.items()
    ]
    print()
    print(
        render_table(
            ["Benchmark", "B", "P", "C", "W"],
            rows,
            title="Fig. 10: energy normalized to requester-wins",
        )
    )
    geomean = rows_data["geomean"]
    print(
        "geomean: C saves {:.1%}, W saves {:.1%} vs B".format(
            1 - geomean["C"], 1 - geomean["W"]
        )
    )
    # Shape: CLEAR saves energy on average, in both stacks.
    assert geomean["C"] < 1.0
    assert geomean["W"] < 1.0
    assert geomean["W"] < geomean["P"]
