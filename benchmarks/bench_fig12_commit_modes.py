"""Figure 12 — Commit breakdown per execution mode.

Regenerates the stacked commit-share bars: speculative / S-CL / NS-CL /
fallback, per benchmark and configuration. Paper landmarks: mwobject is
the only application committing mostly in NS-CL; arrayswap commits
roughly a third in NS-CL; baseline configurations never use CL modes.
"""

from repro.analysis.experiments import CONFIG_LETTERS, fig12_commit_modes
from repro.analysis.report import render_stacked_shares
from repro.core.modes import ExecMode

MODES = [ExecMode.SPECULATIVE, ExecMode.S_CL, ExecMode.NS_CL, ExecMode.FALLBACK]


def test_fig12_commit_modes(benchmark, matrix):
    rows_data = benchmark.pedantic(
        fig12_commit_modes, args=(matrix,), rounds=1, iterations=1
    )
    print()
    display = []
    for name, per_config in rows_data.items():
        for letter in CONFIG_LETTERS:
            display.append(
                (
                    "{:12s} {}".format(name, letter),
                    {mode.value: share for mode, share in per_config[letter].items()},
                )
            )
    print(
        render_stacked_shares(
            display,
            [mode.value for mode in MODES],
            title="Fig. 12: commit breakdown per mode "
                  "(# = speculative, = = S-CL, + = NS-CL, . = fallback)",
        )
    )
    for name, per_config in rows_data.items():
        # Non-CLEAR configurations can never commit in a CL mode.
        for letter in ("B", "P"):
            assert per_config[letter].get(ExecMode.S_CL, 0.0) == 0.0, name
            assert per_config[letter].get(ExecMode.NS_CL, 0.0) == 0.0, name
        for letter in CONFIG_LETTERS:
            assert abs(sum(per_config[letter].values()) - 1.0) < 1e-6
    # mwobject: the paper's NS-CL showcase.
    mwobject_nscl = rows_data["mwobject"]["C"].get(ExecMode.NS_CL, 0.0)
    assert mwobject_nscl > 0.2
    # Immutable regions must never take the S-CL path in CLEAR configs.
    assert rows_data["mwobject"]["C"].get(ExecMode.S_CL, 0.0) == 0.0
